package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// budgetflowPkgs are the serving-path packages where every deadline must
// trace back to a budget and every wait must honor one.
var budgetflowPkgs = []string{"media", "edge", "wire"}

// BudgetFlow is the source-sink taint check over deadline values: connio
// demands that conn I/O *has* a deadline; budgetflow demands it is the
// *right* deadline — derived from a wire budget (a Budget/Deadline field
// on a frame), a chunk budget, or a config backstop (a *Timeout/*Budget
// duration field or Default* constant), never a bare literal.
//
// Two sinks are checked:
//
//   - every SetDeadline/SetReadDeadline/SetWriteDeadline argument on a
//     conn must be tainted (zero-time clears are exempt);
//   - inside any function carrying a time.Time/time.Duration parameter
//     (a budget carrier on the serving path), a bare channel receive or
//     a select with neither default nor a budget-derived timer case can
//     outwait the budget it was handed, and is flagged.
//
// Taint propagates through locals (assignment fixpoint per function),
// through any call that mentions a tainted argument (time.Now().Add(b),
// time.Until(d), normalization helpers), and interprocedurally into
// time-typed parameters when every in-load caller passes a tainted
// argument — exported functions' parameters are tainted by fiat, since
// their callers live outside the load and own the derivation.
var BudgetFlow = &Analyzer{
	Name: "budgetflow",
	Doc: "require conn deadlines derived from wire budgets or config backstops, " +
		"and budget-bounded waits in functions that carry a deadline",
	Run: runBudgetFlow,
}

func runBudgetFlow(pass *Pass) {
	if !pass.inPackages(budgetflowPkgs...) || pass.Prog == nil {
		return
	}
	bf := &budgetFlow{
		pass:       pass,
		prog:       pass.Prog,
		callers:    map[string][]bfCaller{},
		locals:     map[*FuncNode]map[types.Object]bool{},
		paramState: map[string]int{},
	}
	for _, n := range bf.prog.Nodes {
		for _, site := range n.Calls {
			for _, callee := range site.Callees {
				bf.callers[callee.Key] = append(bf.callers[callee.Key], bfCaller{node: n, call: site.Call})
			}
		}
	}
	for _, n := range bf.prog.Nodes {
		if n.Pkg != pass.Pkg {
			continue
		}
		bf.checkDeadlineArgs(n)
		if n.Decl != nil && bf.hasTimeParam(n) {
			bf.checkWaits(n)
		}
	}
}

type bfCaller struct {
	node *FuncNode
	call *ast.CallExpr
}

type budgetFlow struct {
	pass    *Pass
	prog    *Program
	callers map[string][]bfCaller
	locals  map[*FuncNode]map[types.Object]bool
	// paramState memoizes parameter taint: 1 in-progress (cycle: treat
	// as untainted, the least fixpoint), 2 tainted, 3 untainted.
	paramState map[string]int
}

// isTimeType matches time.Time and time.Duration.
func isTimeType(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "time" {
		return false
	}
	return n.Obj().Name() == "Time" || n.Obj().Name() == "Duration"
}

// budgetName matches the naming convention budgets travel under.
func budgetName(name string) bool {
	l := strings.ToLower(name)
	return strings.HasSuffix(l, "budget") || strings.HasSuffix(l, "deadline") || strings.HasSuffix(l, "timeout")
}

func (bf *budgetFlow) hasTimeParam(n *FuncNode) bool {
	if n.Fn == nil {
		return false
	}
	sig, ok := n.Fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isTimeType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// localTaint computes (and memoizes) the node's tainted locals by
// iterating assignments to a fixpoint.
func (bf *budgetFlow) localTaint(n *FuncNode) map[types.Object]bool {
	if m, ok := bf.locals[n]; ok {
		return m
	}
	m := map[types.Object]bool{}
	bf.locals[n] = m // set before iterating so cycles terminate
	pass := n.pass(bf.prog)
	for changed := true; changed; {
		changed = false
		shallowInspect(n.Body, func(nd ast.Node) bool {
			as, ok := nd.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				var rhs ast.Expr
				if i < len(as.Rhs) {
					rhs = as.Rhs[i]
				} else if len(as.Rhs) == 1 {
					rhs = as.Rhs[0]
				}
				if rhs == nil {
					continue
				}
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Pkg.Info.Defs[id]
				if obj == nil {
					obj = pass.Pkg.Info.Uses[id]
				}
				if obj == nil || m[obj] {
					continue
				}
				if bf.taintedIn(n, rhs, m) {
					m[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return m
}

// taintedIn reports whether e mentions a budget source in the context
// of node n: a budget-named time-typed field or package-level value, a
// tainted local (n's or an enclosing declaration's, for literals), or a
// tainted time-typed parameter.
func (bf *budgetFlow) taintedIn(n *FuncNode, e ast.Expr, local map[types.Object]bool) bool {
	pass := n.pass(bf.prog)
	tainted := false
	ast.Inspect(e, func(m ast.Node) bool {
		if tainted {
			return false
		}
		switch m := m.(type) {
		case *ast.SelectorExpr:
			if isTimeType(pass.exprType(m)) && budgetName(m.Sel.Name) {
				tainted = true
				return false
			}
		case *ast.Ident:
			obj := pass.Pkg.Info.Uses[m]
			if obj == nil {
				obj = pass.Pkg.Info.Defs[m]
			}
			if obj == nil {
				return true
			}
			// Package-scope constants and variables match by convention.
			if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() &&
				isTimeType(obj.Type()) && budgetName(obj.Name()) {
				tainted = true
				return false
			}
			if local[obj] {
				tainted = true
				return false
			}
			// Walk the literal-nesting chain: an ident in a closure may be
			// the enclosing declaration's local or parameter.
			for p := n; p != nil; p = p.Parent {
				if p != n {
					if bf.localTaint(p)[obj] {
						tainted = true
						return false
					}
				}
				if i := p.paramIndexOf(p.pass(bf.prog), m); i >= 0 {
					if isTimeType(obj.Type()) && bf.paramTainted(p, i) {
						tainted = true
					}
					return !tainted
				}
			}
		}
		return true
	})
	return tainted
}

// paramTainted reports whether every in-load caller passes a tainted
// argument at index idx. Exported functions are tainted by fiat: their
// derivation obligation sits with callers outside the load.
func (bf *budgetFlow) paramTainted(n *FuncNode, idx int) bool {
	key := n.Key + "#" + itoa(idx)
	switch bf.paramState[key] {
	case 1, 3:
		return false
	case 2:
		return true
	}
	if n.Fn != nil && n.Fn.Exported() {
		bf.paramState[key] = 2
		return true
	}
	bf.paramState[key] = 1
	callers := bf.callers[n.Key]
	ok := len(callers) > 0
	for _, c := range callers {
		if idx >= len(c.call.Args) {
			ok = false
			break
		}
		if !bf.taintedIn(c.node, c.call.Args[idx], bf.localTaint(c.node)) {
			ok = false
			break
		}
	}
	if ok {
		bf.paramState[key] = 2
	} else {
		bf.paramState[key] = 3
	}
	return ok
}

// isZeroTime matches time.Time{} — clearing a deadline, not setting one.
func isZeroTime(pass *Pass, e ast.Expr) bool {
	cl, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok || len(cl.Elts) != 0 {
		return false
	}
	n := namedOf(pass.exprType(cl))
	return n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "time" && n.Obj().Name() == "Time"
}

// checkDeadlineArgs is the sink check on deadline setters.
func (bf *budgetFlow) checkDeadlineArgs(n *FuncNode) {
	pass := n.pass(bf.prog)
	local := bf.localTaint(n)
	shallowInspect(n.Body, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !isConnType(pass.exprType(sel.X)) {
			return true
		}
		switch sel.Sel.Name {
		case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
		default:
			return true
		}
		arg := call.Args[0]
		if isZeroTime(pass, arg) || bf.taintedIn(n, arg, local) {
			return true
		}
		bf.pass.Reportf(call.Pos(),
			"deadline on %q is not derived from a wire budget, chunk budget, or config backstop",
			exprText(sel.X))
		return true
	})
}

// checkWaits is the sink check on blocking waits inside budget-carrying
// functions: the budget parameter exists to bound exactly these.
func (bf *budgetFlow) checkWaits(n *FuncNode) {
	local := bf.localTaint(n)
	// Receives that appear as a select case's comm are judged with their
	// select, not as bare receives.
	inComm := map[ast.Node]bool{}
	shallowInspect(n.Body, func(m ast.Node) bool {
		sel, ok := m.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ast.Inspect(cc.Comm, func(x ast.Node) bool {
				if u, ok := x.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					inComm[u] = true
				}
				return true
			})
		}
		return true
	})
	shallowInspect(n.Body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.UnaryExpr:
			if m.Op != token.ARROW || inComm[m] {
				return true
			}
			// A receive from a budget-derived channel (a timer built from
			// the deadline) is itself the bound.
			if bf.taintedIn(n, m.X, local) {
				return true
			}
			bf.pass.Reportf(m.Pos(),
				"receive on %q can outwait the budget this function carries: bound it with a select on a budget-derived timer",
				exprText(m.X))
		case *ast.SelectStmt:
			bounded := false
			for _, c := range m.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				if cc.Comm == nil { // default case
					bounded = true
					break
				}
				ast.Inspect(cc.Comm, func(x ast.Node) bool {
					if u, ok := x.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
						if bf.taintedIn(n, u.X, local) {
							bounded = true
						}
					}
					return true
				})
				if bounded {
					break
				}
			}
			if !bounded {
				bf.pass.Reportf(m.Pos(),
					"select has neither a default nor a budget-derived timer case: it can outwait the budget this function carries")
			}
		}
		return true
	})
}
