// Package media is the flagging goleak fixture: spawns with no
// statically-visible join evidence — a method draining a channel nobody
// closes, a literal in the same position, and a cross-function wait on
// a parameter channel with no close anywhere in the program.
package media

type relay struct {
	inbox chan int
}

// run drains inbox, but nothing closes it and no WaitGroup brackets the
// spawn: the goroutine is unjoinable.
func (r *relay) run() {
	for v := range r.inbox {
		_ = v
	}
}

func (r *relay) start() {
	go r.run() // want `no statically-visible join evidence`
}

// The literal neither Dones a WaitGroup nor waits on a channel the
// program closes.
func tick(events chan int) {
	go func() { // want `no statically-visible join evidence`
		for e := range events {
			_ = e
		}
	}()
}

// work waits on its parameter, but no caller ever closes the channel it
// is handed.
func work(done chan struct{}) {
	<-done
}

func launch() {
	done := make(chan struct{})
	go work(done) // want `no statically-visible join evidence`
	_ = done
}
