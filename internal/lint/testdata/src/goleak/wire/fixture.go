// Package wire is the non-flagging goleak fixture: every spawn carries
// join evidence — field and local WaitGroups (directly and through a
// callee), parameter-passed WaitGroups mapped through the spawn
// arguments, and waits on channels the program closes.
package wire

import "sync"

type mux struct {
	wg    sync.WaitGroup
	tasks chan int
	done  chan struct{}
}

// Field WaitGroup: Add at the spawn, Done in the spawned method.
func (m *mux) start() {
	m.wg.Add(1)
	go m.loop()
}

func (m *mux) loop() {
	defer m.wg.Done()
	for t := range m.tasks {
		_ = t
	}
}

// Done through a callee: the join fixpoint lifts finish's Done into
// drainLoop's summary.
func (m *mux) drain() {
	m.wg.Add(1)
	go m.drainLoop()
}

func (m *mux) drainLoop() {
	m.finish()
}

func (m *mux) finish() {
	m.wg.Done()
}

// Closed-channel wait: stop closes done, so the watcher is joinable.
func (m *mux) watch() {
	go m.waitDone()
}

func (m *mux) waitDone() {
	<-m.done
}

func (m *mux) stop() {
	close(m.done)
}

// Local WaitGroup captured by a literal spawned in a loop.
func fanOut(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// Parameter-passed WaitGroup mapped through the spawn arguments.
func runOne(wg *sync.WaitGroup) {
	defer wg.Done()
}

func runAll() {
	var wg sync.WaitGroup
	wg.Add(2)
	go runOne(&wg)
	go runOne(&wg)
	wg.Wait()
}

// Parameter-passed channel the program closes.
func consume(stop chan struct{}) {
	<-stop
}

func boundedConsume() {
	stop := make(chan struct{})
	go consume(stop)
	close(stop)
}
