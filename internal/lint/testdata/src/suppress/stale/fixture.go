// Package stale pins stale-suppression reporting: a justified
// directive for an analyzer in the run set that suppresses nothing is
// itself reported, and the NoStaleCheck option silences that report
// for the vet unit mode.
package stale

import "time"

func zero() time.Time {
	//nslint:disable determinism -- legacy shim kept after the clock call was removed // want `stale suppression`
	return time.Time{}
}
