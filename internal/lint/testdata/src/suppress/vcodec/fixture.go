// Package vcodec exercises //nslint:disable handling: a justified
// suppression swallows its finding; one without a reason is itself
// reported and suppresses nothing.
package vcodec

import "time"

func LogStamp() int64 {
	//nslint:disable determinism -- wall clock feeds a human-facing log line only
	return time.Now().UnixNano()
}

func BadStamp() int64 {
	//nslint:disable determinism
	return time.Now().UnixNano()
}
