// Package media is the budgetflow clean fixture: every deadline traces
// to a wire budget, a chunk budget field, or a config backstop, and
// every wait in a budget-carrying function is bounded — the analyzer
// must stay silent.
package media

import (
	"net"
	"time"
)

// DefaultFetchTimeout is the config backstop deadlines may fall back to.
const DefaultFetchTimeout = 5 * time.Second

type config struct {
	ReadTimeout time.Duration
}

type job struct {
	deadline time.Time
}

func serveBackstop(conn net.Conn) {
	_ = conn.SetReadDeadline(time.Now().Add(DefaultFetchTimeout))
}

func serveConfig(conn net.Conn, cfg config) {
	_ = conn.SetWriteDeadline(time.Now().Add(cfg.ReadTimeout))
}

func serveJob(conn net.Conn, j job) {
	_ = conn.SetDeadline(j.deadline)
}

// WaitBounded waits on the build under a timer derived from its budget
// parameter (exported: tainted by fiat).
func WaitBounded(done chan struct{}, budget time.Duration) {
	t := time.NewTimer(budget)
	defer t.Stop()
	select {
	case <-done:
	case <-t.C:
	}
}

// waitLocal derives its bound from a local stamped off the backstop.
func waitLocal(done chan struct{}, deadline time.Time) {
	_ = deadline
	wakeup := time.Now().Add(DefaultFetchTimeout)
	t := time.NewTimer(time.Until(wakeup))
	defer t.Stop()
	select {
	case <-done:
	case <-t.C:
	}
}

// selectDefault never blocks, so it needs no timer.
func selectDefault(done chan struct{}, deadline time.Time) bool {
	_ = deadline
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// noBudgetNoCheck carries no time-typed parameter: bare receives are
// connio/goleak territory, not budgetflow's.
func noBudgetNoCheck(done chan struct{}) {
	<-done
}
