// Package edge is the budgetflow flagging fixture: deadlines invented
// from bare literals, unbounded waits inside budget-carrying functions,
// and a parameter whose only caller derives its deadline from thin air.
package edge

import (
	"net"
	"time"
)

// Msg mimics a wire frame carrying a relative budget.
type Msg struct {
	Budget time.Duration
}

func serveBad(conn net.Conn) {
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second)) // want `not derived from a wire budget, chunk budget, or config backstop`
}

func serveGood(conn net.Conn, m Msg) {
	_ = conn.SetReadDeadline(time.Now().Add(m.Budget))
}

func clearIsExempt(conn net.Conn) {
	_ = conn.SetDeadline(time.Time{})
}

func waitBad(done chan struct{}, deadline time.Time) {
	_ = deadline
	<-done // want `can outwait the budget this function carries`
}

func selectBad(done chan struct{}, deadline time.Time) {
	_ = deadline
	select { // want `neither a default nor a budget-derived timer case`
	case <-done:
	}
}

// SelectGood bounds its wait with a timer built from the deadline; the
// exported parameter is budget-tainted by fiat.
func SelectGood(done chan struct{}, deadline time.Time) {
	t := time.NewTimer(time.Until(deadline))
	defer t.Stop()
	select {
	case <-done:
	case <-t.C:
	}
}

// arm's only caller passes a budget-derived deadline: clean through the
// interprocedural taint step.
func ServeConn(conn net.Conn, m Msg) {
	arm(conn, time.Now().Add(m.Budget))
}

func arm(conn net.Conn, deadline time.Time) {
	_ = conn.SetDeadline(deadline)
}

// badArm's only caller invents the deadline from a literal, so the
// parameter stays untainted and the sink is flagged where it fires.
func armCaller(conn net.Conn) {
	badArm(conn, time.Now().Add(3*time.Second))
}

func badArm(conn net.Conn, deadline time.Time) {
	_ = conn.SetWriteDeadline(deadline) // want `not derived from a wire budget, chunk budget, or config backstop`
}
