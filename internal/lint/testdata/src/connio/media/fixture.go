// Package media is a connio fixture: conn reads/writes must be covered
// by a deadline in the function itself or in every in-package caller,
// with thin forwarders exempt.
package media

import (
	"net"
	"time"

	"github.com/neuroscaler/neuroscaler/internal/wire"
)

func handshake(conn net.Conn, buf []byte) error {
	_, err := conn.Write(buf) // want `write to conn "conn" without a deadline`
	return err
}

func handshakeArmed(conn net.Conn, buf []byte) error {
	if err := conn.SetWriteDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	_, err := conn.Write(buf)
	return err
}

func hello(conn net.Conn) error {
	return wire.Write(conn, wire.Message{}) // want `write to conn "conn" without a deadline`
}

func helloArmed(conn net.Conn) error {
	_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
	return wire.Write(conn, wire.Message{})
}

// readFrame carries no deadline itself, but its only caller arms one:
// covered through the call graph.
func readFrame(conn net.Conn, buf []byte) error {
	_, err := conn.Read(buf)
	return err
}

func pollOnce(conn net.Conn, buf []byte) error {
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	return readFrame(conn, buf)
}

// relay's caller never arms a deadline, so the write inside is exposed.
func relay(conn net.Conn, buf []byte) error {
	_, err := conn.Write(buf) // want `write to conn "conn" without a deadline`
	return err
}

func spin(conn net.Conn, buf []byte) {
	_ = relay(conn, buf)
}

// loggedConn forwards to the wrapped conn; the deadline obligation stays
// with whoever owns it.
type loggedConn struct{ net.Conn }

func (c *loggedConn) Write(p []byte) (int, error) {
	return c.Conn.Write(p)
}
