// Package other sits outside connio's scope (media, wire, faults):
// identical undeadlined I/O must produce zero findings.
package other

import "net"

func handshake(conn net.Conn, buf []byte) error {
	_, err := conn.Write(buf)
	return err
}
