module github.com/neuroscaler/neuroscaler/internal/lint/testdata/src

go 1.22

require github.com/neuroscaler/neuroscaler v0.0.0

replace github.com/neuroscaler/neuroscaler => ../../../..
