// Package media is a seqsafe fixture: fields annotated `guarded by mu`
// may only be touched under that mutex, in *Locked methods, or while the
// owner is being constructed.
package media

import "sync"

type registry struct {
	mu sync.Mutex
	// guarded by mu
	entries map[string]int
	gen     int
}

func (r *registry) Add(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[name] = r.gen
}

func (r *registry) sizeLocked() int {
	return len(r.entries)
}

func (r *registry) Peek(name string) int {
	return r.entries[name] // want `registry.entries is guarded by mu`
}

func (r *registry) Generation() int {
	return r.gen // want `registry.gen is guarded by mu`
}

func newRegistry() *registry {
	r := &registry{entries: make(map[string]int)}
	r.gen = 1
	return r
}
