// Package borrow is the flagging arenapair fixture for the slab
// ownership directives: functions annotated nslint:slab-borrow hand
// their caller a pooled buffer that must be Put, transferred via an
// nslint:slab-transfer sink, or handed off.
package borrow

import "github.com/neuroscaler/neuroscaler/internal/par"

type message struct {
	payload []byte
}

// readMessage borrows the returned payload from pool.
//
//nslint:slab-borrow pool
func readMessage(n int, pool *par.SlabPool[byte]) (message, error) {
	return message{payload: pool.Get(n)}, nil
}

type store struct {
	chunks [][]byte
}

// keep takes ownership of chunk; the caller must not recycle it.
//
//nslint:slab-transfer chunk
func (s *store) keep(chunk []byte) {
	s.chunks = append(s.chunks, chunk)
}

func putBack(pool *par.SlabPool[byte]) int {
	m, _ := readMessage(64, pool)
	n := len(m.payload)
	pool.Put(m.payload)
	return n
}

func deferred(pool *par.SlabPool[byte]) int {
	m, _ := readMessage(64, pool)
	defer pool.Put(m.payload)
	return len(m.payload)
}

func transferred(pool *par.SlabPool[byte], s *store) {
	m, _ := readMessage(64, pool)
	s.keep(m.payload)
}

func handedOff(pool *par.SlabPool[byte], out chan message) {
	m, _ := readMessage(64, pool)
	out <- m
}

func leakyBranch(pool *par.SlabPool[byte]) int {
	m, _ := readMessage(64, pool) // want `slab borrowed from pool has no Put or ownership transfer`
	if len(m.payload) > 16 {
		return 0
	}
	pool.Put(m.payload)
	return 1
}

func discarded(pool *par.SlabPool[byte]) {
	readMessage(64, pool) // want `slab borrowed from pool has no Put or ownership transfer`
}
