// Package media is an arenapair fixture built on the real pool types:
// par.SlabPool Get/Put pairing and frame.Borrow/Release ownership rules.
package media

import (
	"github.com/neuroscaler/neuroscaler/internal/frame"
	"github.com/neuroscaler/neuroscaler/internal/par"
)

type codec struct {
	pool par.SlabPool[byte]
}

func (c *codec) balanced(n int) int {
	buf := c.pool.Get(n)
	defer c.pool.Put(buf)
	return len(buf)
}

func (c *codec) explicitPaths(n int) int {
	buf := c.pool.Get(n)
	if n > 16 {
		c.pool.Put(buf)
		return 0
	}
	m := len(buf)
	c.pool.Put(buf)
	return m
}

func (c *codec) leaky(n int) int {
	buf := c.pool.Get(n) // want `has no matching Put on this path`
	if n > 16 {
		return 0
	}
	c.pool.Put(buf)
	return len(buf)
}

func (c *codec) growAndReturnPooled(n int) int {
	scratch := c.pool.Get(0)[:0]
	scratch = append(scratch, make([]byte, n)...)
	m := len(scratch)
	c.pool.Put(scratch)
	return m
}

func dimsLeaky(w, h int) int {
	f := frame.Borrow(w, h) // want `neither released nor handed off`
	return f.SizeBytes()
}

func dimsReleased(w, h int) int {
	f := frame.Borrow(w, h)
	defer frame.Release(f)
	return f.SizeBytes()
}

func fresh(w, h int) *frame.Frame {
	f := frame.BorrowZero(w, h)
	return f // ownership transfers to the caller: no obligation here
}
