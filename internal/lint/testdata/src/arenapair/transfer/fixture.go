// Package transfer is the non-flagging arenapair fixture for the slab
// ownership directives: every pooled buffer is Put back, handed off, or
// transferred through an annotated sink, so the analyzer must stay
// silent.
package transfer

import "github.com/neuroscaler/neuroscaler/internal/par"

type frameMsg struct {
	payload []byte
}

// borrowFrame borrows the returned payload from pool.
//
//nslint:slab-borrow pool
func borrowFrame(n int, pool *par.SlabPool[byte]) frameMsg {
	return frameMsg{payload: pool.Get(n)}
}

type archive struct {
	blobs [][]byte
}

// retain takes ownership of blob forever (readers alias it).
//
//nslint:slab-transfer blob
func (a *archive) retain(blob []byte) int {
	a.blobs = append(a.blobs, blob)
	return len(a.blobs) - 1
}

func getThenTransfer(pool *par.SlabPool[byte], a *archive) int {
	buf := pool.Get(32)
	idx := a.retain(buf)
	return idx
}

func borrowThenTransfer(pool *par.SlabPool[byte], a *archive) int {
	m := borrowFrame(64, pool)
	idx := a.retain(m.payload)
	return idx
}

func borrowThenPut(pool *par.SlabPool[byte]) int {
	m := borrowFrame(64, pool)
	n := len(m.payload)
	pool.Put(m.payload)
	return n
}

func borrowDeferredPut(pool *par.SlabPool[byte]) int {
	m := borrowFrame(64, pool)
	defer pool.Put(m.payload)
	return len(m.payload)
}
