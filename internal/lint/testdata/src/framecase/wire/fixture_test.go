package wire

import "testing"

// FuzzDecodeWidow covers the widowed decoder, so framecase's fuzz check
// flags only DecodePayload.
func FuzzDecodeWidow(f *testing.F) {
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeWidow(data)
	})
}
