// Package wire is the framecase flagging fixture: a frame-type switch
// that silently drops an unlisted type, a switch mixing dynamic cases
// without a default, a write-only encoder, an unproducible decoder, a
// stale maxType sentinel, and a decoder no fuzz function feeds.
package wire

import "errors"

// Type is the frame-type vocabulary.
type Type uint8

const (
	TypeA Type = 1
	TypeB Type = 2
	TypeC Type = 3
)

const maxType = TypeB // want `maxType (2) is below the highest assigned frame type TypeC (3)`

func handle(t Type) int {
	switch t { // want `misses TypeC`
	case TypeA:
		return 1
	case TypeB:
		return 2
	}
	return 0
}

func handleDynamic(t, other Type) int {
	switch t { // want `mixes non-constant cases without a default`
	case TypeA:
		return 1
	case other:
		return 2
	}
	return 0
}

func handleDefaulted(t Type) int {
	switch t {
	case TypeA:
		return 1
	default:
		return 0
	}
}

// EncodeOrphan has no decoder: its frames are write-only.
func EncodeOrphan(v int) []byte { // want `EncodeOrphan has no matching DecodeOrphan`
	return []byte{byte(v)}
}

// DecodeWidow has no encoder: nothing in-tree produces its frames.
func DecodeWidow(data []byte) (int, error) { // want `DecodeWidow has no matching EncodeWidow`
	if len(data) == 0 {
		return 0, errors.New("wire: empty widow")
	}
	return int(data[0]), nil
}

// EncodePayload/DecodePayload pair up, but no Fuzz* function feeds the
// decoder.
func EncodePayload(v int) []byte {
	return []byte{byte(v)}
}

func DecodePayload(data []byte) (int, error) { // want `not exercised by any Fuzz`
	if len(data) == 0 {
		return 0, errors.New("wire: empty payload")
	}
	return int(data[0]), nil
}
