// Package reader is the framecase clean fixture: switches over the
// wire frame type that are either exhaustive or defaulted, in a
// package importing the enum — the analyzer must stay silent.
package reader

import "github.com/neuroscaler/neuroscaler/internal/lint/testdata/src/framecase/wire"

func route(t wire.Type) int {
	switch t {
	case wire.TypeA:
		return 1
	case wire.TypeB:
		return 2
	case wire.TypeC:
		return 3
	}
	return 0
}

func routeDefaulted(t wire.Type) int {
	switch t {
	case wire.TypeA:
		return 1
	default:
		return 0
	}
}

// routeInts is out of scope: not the wire enum.
func routeInts(v int) int {
	switch v {
	case 1:
		return 1
	}
	return 0
}
