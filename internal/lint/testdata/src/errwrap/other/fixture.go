// Package other is outside errwrap's scope: the flattening idiom is
// tolerated in leaf packages that never feed errors.Is chains.
package other

import "fmt"

func Flattened(err error) error {
	return fmt.Errorf("read frame: %v", err)
}
