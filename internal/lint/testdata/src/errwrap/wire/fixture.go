// Package wire is an errwrap fixture: fmt.Errorf flattening an error
// with %v/%s loses the errors.Is/As chain the serving path depends on.
package wire

import (
	"errors"
	"fmt"
)

var errShort = errors.New("short frame")

func Flattened(err error) error {
	return fmt.Errorf("read frame: %v", err) // want `formats an error without %w`
}

func Wrapped(err error) error {
	return fmt.Errorf("read frame: %w", err)
}

func Plain(n int) error {
	return fmt.Errorf("bad length %d", n)
}

func Sentinel(n int) error {
	return fmt.Errorf("frame %d: %w", n, errShort)
}
