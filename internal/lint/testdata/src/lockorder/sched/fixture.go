// Package sched is the non-flagging lockorder fixture: every
// cross-function acquisition order is documented with an in-source
// directive, Locked-suffix callees share the caller's hold, and
// sequential (non-nested) acquisitions produce no edges.
package sched

import "sync"

//nslint:lock-order runQueue.mu -> workerSet.mu -- fixture: the queue dispatches into workers, never the reverse

type runQueue struct {
	mu   sync.Mutex
	jobs []int
}

type workerSet struct {
	mu   sync.Mutex
	busy int
}

func (w *workerSet) claim() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.busy++
}

// dispatch holds the queue lock while claiming a worker: the documented
// order.
func (q *runQueue) dispatch(w *workerSet) {
	q.mu.Lock()
	defer q.mu.Unlock()
	w.claim()
}

// drainLocked runs under q.mu (the Locked suffix seeds the held set);
// its claim calls ride the same documented edge.
func (q *runQueue) drainLocked(w *workerSet) {
	for range q.jobs {
		w.claim()
	}
}

// sequential takes the locks one after the other, never nested: no
// ordering constraint arises.
func sequential(q *runQueue, w *workerSet) {
	q.mu.Lock()
	q.jobs = nil
	q.mu.Unlock()
	w.mu.Lock()
	w.busy = 0
	w.mu.Unlock()
}
