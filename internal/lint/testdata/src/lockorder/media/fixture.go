// Package media is the flagging lockorder fixture: an undocumented
// cross-function acquisition order reached through an intermediate
// helper, a self-deadlocking re-acquisition through a callee, and a
// cycle whose edges are individually documented.
package media

import "sync"

type registry struct {
	mu sync.Mutex
	n  int
}

type journal struct {
	mu sync.Mutex
	n  int
}

func (j *journal) bump() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.n++
}

// record reaches journal.mu through touch while registry.mu is held: an
// interprocedural edge no single function exhibits.
func (r *registry) record(j *journal) {
	r.mu.Lock()
	defer r.mu.Unlock()
	touch(j) // want `outside the documented lock order`
}

func touch(j *journal) {
	j.bump()
}

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) bumpTwice() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump() // want `self-deadlock`
}

// Both directions are individually documented, so neither edge is
// reported on its own — only the cycle check catches the combination.
//
//nslint:lock-order front.mu -> back.mu -- fixture: forward order
//nslint:lock-order back.mu -> front.mu -- fixture: reverse order

type front struct{ mu sync.Mutex }

type back struct{ mu sync.Mutex }

func (b *back) poke() {
	b.mu.Lock()
	b.mu.Unlock()
}

func (f *front) poke() {
	f.mu.Lock()
	f.mu.Unlock()
}

func forward(f *front, b *back) {
	f.mu.Lock()
	defer f.mu.Unlock()
	b.poke()
}

func reverse(f *front, b *back) {
	b.mu.Lock()
	defer b.mu.Unlock()
	f.poke() // want `lock-order cycle`
}
