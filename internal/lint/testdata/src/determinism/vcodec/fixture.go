// Package vcodec is a determinism fixture: its import-path base matches
// a deterministic package, so wall-clock and ambient-randomness leaks
// must be flagged while the seeded/sorted idioms pass.
package vcodec

import (
	"math/rand"
	"sort"
	"time"
)

func Timestamp() int64 {
	return time.Now().UnixNano() // want `time.Now in deterministic package`
}

func Jitter() int {
	return rand.Intn(8) // want `draws from the global source`
}

func SeededJitter(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(8)
}

func Checksum(m map[int]int) int {
	var sum int
	for _, v := range m {
		sum += v
	}
	return sum
}

func Histogram(samples map[string]int) map[int]int {
	out := make(map[int]int)
	for _, v := range samples {
		out[v]++
	}
	return out
}

func Keys(m map[int]struct{}) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func FirstOrder(m map[int]int) []int {
	var out []int
	for k, v := range m { // want `map iteration order can reach the output`
		out = append(out, k*v)
	}
	return out
}
