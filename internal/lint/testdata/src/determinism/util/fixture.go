// Package util is outside the deterministic set: identical code to the
// vcodec fixture must produce zero findings here.
package util

import (
	"math/rand"
	"time"
)

func Timestamp() int64 {
	return time.Now().UnixNano()
}

func Jitter() int {
	return rand.Intn(8)
}

func FirstOrder(m map[int]int) []int {
	var out []int
	for k, v := range m {
		out = append(out, k*v)
	}
	return out
}
