// Package sched is a lockhold fixture: blocking operations inside
// lexical critical sections, plus the documented lock-order edges.
package sched

import (
	"net"
	"sync"
	"time"
)

type queue struct {
	mu   sync.Mutex
	ch   chan int
	done chan int
	wg   sync.WaitGroup
}

func newQueue() *queue {
	return &queue{
		ch:   make(chan int),
		done: make(chan int, 8),
	}
}

func (q *queue) sleepUnderLock() {
	q.mu.Lock()
	defer q.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding`
}

func (q *queue) sendUnderLock(v int) {
	q.mu.Lock()
	q.ch <- v // want `send on unbuffered channel`
	q.mu.Unlock()
}

func (q *queue) bufferedSendUnderLock(v int) {
	q.mu.Lock()
	q.done <- v // buffered elsewhere: not provably blocking
	q.mu.Unlock()
}

func (q *queue) waitUnderLock() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.wg.Wait() // want `Wait while holding`
}

func (q *queue) sleepOutsideLock() {
	q.mu.Lock()
	q.mu.Unlock() //nolint:staticcheck // empty critical section is the fixture's point
	time.Sleep(time.Millisecond)
}

func (q *queue) connUnderLockArmed(conn net.Conn, buf []byte) error {
	_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
	q.mu.Lock()
	defer q.mu.Unlock()
	_, err := conn.Write(buf)
	return err
}

func (q *queue) connUnderLock(conn net.Conn, buf []byte) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	_, err := conn.Write(buf) // want `conn I/O on "conn" while holding`
	return err
}

// Lock-order fixtures named after the real types so the documented
// hierarchy applies verbatim.
type EnhancerPool struct {
	helloMu sync.Mutex
	mu      sync.Mutex
}

type poolReplica struct {
	mu   sync.Mutex
	pool *EnhancerPool
}

// syncRegistrationsLocked runs with r.mu held (the *Locked convention);
// taking helloMu under it is the documented edge.
func (r *poolReplica) syncRegistrationsLocked() {
	r.pool.helloMu.Lock()
	r.pool.helloMu.Unlock()
}

func (r *poolReplica) badNesting() {
	r.pool.mu.Lock()
	r.mu.Lock() // want `outside the documented lock order`
	r.mu.Unlock()
	r.pool.mu.Unlock()
}
