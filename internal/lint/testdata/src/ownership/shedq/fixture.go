// Package shedq is the flagging fixture for deadline-bearing queue
// ownership transfer: enqueueing a pooled payload hands it to the shed
// queue, so a pop loop that drops expired entries on the floor leaks
// the slab, and a shed path that already released through a helper
// must not release again.
package shedq

import "github.com/neuroscaler/neuroscaler/internal/par"

// entry is one queued job: a deadline tick plus the pooled payload the
// queue owns once the entry is admitted.
type entry struct {
	deadlineTick int64
	payload      []byte
}

var (
	pool    par.SlabPool[byte]
	queueCh = make(chan entry, 8)
)

// enqueue transfers ownership of the payload into the queue. No pop
// path below ever releases or retains it, so the slab is lost whether
// the entry expires or serves.
func enqueue(tick int64, n int) {
	buf := pool.Get(n)
	queueCh <- entry{deadlineTick: tick, payload: buf} // want `sent on a channel with no receiving path that releases or retains it`
}

// popLoop drops expired entries without returning the slab and serves
// fresh ones through a consumer that never releases either.
func popLoop(now int64) {
	for e := range queueCh {
		if e.deadlineTick < now {
			continue // expired: dropped on the floor
		}
		serve(e.payload)
	}
}

// serve reads the payload but neither releases nor retains it.
func serve(b []byte) int { return len(b) }

// shedExpired returns an expired payload to the pool on every path: the
// shed helper owns the slab once called.
func shedExpired(p *par.SlabPool[byte], buf []byte) {
	p.Put(buf)
}

// doubleShed sheds an expired payload through the helper, then releases
// again inline: the cross-function double free only the call-graph
// summary can see.
func doubleShed(tick, now int64, n int) {
	buf := pool.Get(n)
	if tick < now {
		shedExpired(&pool, buf)
		pool.Put(buf) // want `released more than once on this path`
	}
}

// useAfterShed touches a payload after the shed helper released it: the
// pool may already have handed the slab to another goroutine.
func useAfterShed(n int) byte {
	buf := pool.Get(n)
	shedExpired(&pool, buf)
	return buf[0] // want `use of pooled buffer "buf" after its release`
}
