// Package fanout is the flagging fixture for the delivery-tier cache
// entry handoff: a container payload is borrowed from the slab pool,
// marshalled once, written to every subscriber conn, and released when
// the last delivery completes. Each function below breaks one rule of
// that lifecycle.
package fanout

import "github.com/neuroscaler/neuroscaler/internal/par"

// conn is a subscriber connection the fanout loop writes to.
type conn struct{ wrote int }

func (c *conn) write(b []byte) { c.wrote += len(b) }

var (
	pool  par.SlabPool[byte]
	subCh = make(chan []byte, 8)
)

// fanoutUseAfterRelease writes the cached container to every
// subscriber, releases the slab, then touches it again for a trailing
// byte-count metric: by then the pool may have handed the slab to a
// concurrent fetch.
func fanoutUseAfterRelease(conns []*conn, n int) byte {
	buf := pool.Get(n)
	for _, c := range conns {
		c.write(buf)
	}
	pool.Put(buf)
	return buf[0] // want `use of pooled buffer "buf" after its release`
}

// releaseEntry is the cache's eviction hook: once called, it owns the
// slab and returns it to the pool.
func releaseEntry(p *par.SlabPool[byte], buf []byte) {
	p.Put(buf)
}

// evictThenRelease releases through the eviction hook and then again
// inline when the fanout write fails — the cross-function double free
// only the call-graph summary can see.
func evictThenRelease(c *conn, n int, writeFailed bool) {
	buf := pool.Get(n)
	c.write(buf)
	releaseEntry(&pool, buf)
	if writeFailed {
		pool.Put(buf) // want `released more than once on this path`
	}
}

// publishToSubscribers hands the slab to the subscriber channel, but
// the delivery loop below drops slow subscribers' payloads without
// returning them to the pool.
func publishToSubscribers(n int) {
	buf := pool.Get(n)
	subCh <- buf // want `sent on a channel with no receiving path that releases or retains it`
}

// deliveryLoop consumes published payloads; slow-subscriber drops and
// served entries alike leak the slab.
func deliveryLoop(c *conn, slow bool) {
	for b := range subCh {
		if slow {
			continue // dropped delivery: slab lost
		}
		c.write(b)
	}
}
