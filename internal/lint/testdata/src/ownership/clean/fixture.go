// Package clean is the non-flagging ownership fixture: every slab is
// released exactly once — through callees, across branch-local early
// returns, down multi-stage channel pipelines, and inside spawned
// goroutines — so the analyzer must stay silent.
package clean

import "github.com/neuroscaler/neuroscaler/internal/par"

// release takes ownership: callers hand the slab over and stop.
func release(pool *par.SlabPool[byte], buf []byte) {
	pool.Put(buf)
}

func callerHandsOff(pool *par.SlabPool[byte], n int) {
	buf := pool.Get(n)
	release(pool, buf)
}

func deferredOnly(pool *par.SlabPool[byte], n int) int {
	buf := pool.Get(n)
	defer pool.Put(buf)
	return len(buf)
}

// branchRelease releases on the early-return path and again on the main
// path; the paths never overlap.
func branchRelease(pool *par.SlabPool[byte], n int) int {
	buf := pool.Get(n)
	if n > 16 {
		pool.Put(buf)
		return 0
	}
	sum := len(buf)
	pool.Put(buf)
	return sum
}

// The two-stage pipeline mirrors the media server's decode -> package
// shape: decode sends into decodeCh, the middle stage forwards into
// packageCh, and the packager releases. The obligation fixpoint has to
// follow the forward to see the release.
var (
	pipePool  par.SlabPool[byte]
	decodeCh  = make(chan []byte, 4)
	packageCh = make(chan []byte, 4)
)

func decodeStage(n int) {
	buf := pipePool.Get(n)
	decodeCh <- buf
}

func middleStage() {
	for b := range decodeCh {
		packageCh <- b
	}
}

func packageStage() {
	for b := range packageCh {
		pipePool.Put(b)
	}
}

// worker releases the slab it is handed: the spawn transfers ownership
// cleanly across the goroutine boundary.
func worker(pool *par.SlabPool[byte], buf []byte) {
	pool.Put(buf)
}

func spawnHandOff(pool *par.SlabPool[byte], n int) {
	buf := pool.Get(n)
	go worker(pool, buf)
}

// Retention discharges the obligation too: the sink owns the blob for
// the rest of the program.
type sink struct {
	blobs [][]byte
}

var (
	store    = &sink{}
	retainCh = make(chan []byte, 4)
)

func sendToRetain(n int) {
	buf := pipePool.Get(n)
	retainCh <- buf
}

func retainStage() {
	for b := range retainCh {
		store.blobs = append(store.blobs, b)
	}
}
