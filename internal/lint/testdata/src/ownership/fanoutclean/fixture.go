// Package fanoutclean is the non-flagging fixture for the delivery-tier
// cache entry handoff: the container slab is borrowed once, written to
// every subscriber without re-marshalling, and discharged exactly once
// on every path — inline after the last delivery, at the shed point
// when admission declines, or by the delivery loop that owns payloads
// published to the subscriber channel.
package fanoutclean

import "github.com/neuroscaler/neuroscaler/internal/par"

// conn is a subscriber connection the fanout loop writes to.
type conn struct{ wrote int }

func (c *conn) write(b []byte) { c.wrote += len(b) }

var (
	pool  par.SlabPool[byte]
	subCh = make(chan []byte, 8)
)

// serveAndFanout is the steady-state path: one marshalled container
// serves the requesting viewer and every subscriber, then the slab goes
// back exactly once.
func serveAndFanout(requester *conn, subs []*conn, n int) {
	buf := pool.Get(n)
	requester.write(buf)
	for _, c := range subs {
		c.write(buf)
	}
	pool.Put(buf)
}

// admitOrShed models popularity-weighted admission: a declined entry
// releases at the shed point after serving its one in-flight delivery,
// an admitted one transfers to the subscriber channel whose delivery
// loop discharges it.
func admitOrShed(requester *conn, n int, admit bool) {
	buf := pool.Get(n)
	requester.write(buf)
	if !admit {
		pool.Put(buf)
		return
	}
	subCh <- buf
}

// deliveryLoop owns every published payload: written or dropped, the
// slab returns to the pool exactly once.
func deliveryLoop(c *conn, slow bool) {
	for b := range subCh {
		if !slow {
			c.write(b)
		}
		pool.Put(b)
	}
}

// releaseEntry is the eviction hook; evictAfterFanout releases only
// through it, never inline as well.
func releaseEntry(p *par.SlabPool[byte], buf []byte) {
	p.Put(buf)
}

func evictAfterFanout(subs []*conn, n int) {
	buf := pool.Get(n)
	for _, c := range subs {
		c.write(buf)
	}
	releaseEntry(&pool, buf)
}
