// Package media is the flagging ownership fixture: double releases
// (through a releasing callee and against a deferred release), uses
// after release, channel sends whose receivers drop the slab, and
// goroutine hand-offs that neither release nor retain.
package media

import "github.com/neuroscaler/neuroscaler/internal/par"

// release returns buf to the pool on every path: a callee release the
// caller must not repeat.
func release(pool *par.SlabPool[byte], buf []byte) {
	pool.Put(buf)
}

// doubleViaCallee releases through the helper, then again inline: the
// cross-function case only the call-graph summary can see.
func doubleViaCallee(pool *par.SlabPool[byte], n int) {
	buf := pool.Get(n)
	release(pool, buf)
	pool.Put(buf) // want `released more than once on this path`
}

// inlineThenDeferred pairs an inline release with a deferred one that
// runs on every exit.
func inlineThenDeferred(pool *par.SlabPool[byte], n int) int {
	buf := pool.Get(n)
	defer pool.Put(buf)
	sum := len(buf)
	pool.Put(buf) // want `released here and again by the deferred release`
	return sum
}

// useAfterRelease touches the slab in the window where the pool may
// already have handed it to another goroutine.
func useAfterRelease(pool *par.SlabPool[byte], n int) byte {
	buf := pool.Get(n)
	pool.Put(buf)
	return buf[0] // want `use of pooled buffer "buf" after its release`
}

// leakCh's only receiver reads the payload but never returns it to a
// pool or retains it, so a send transferring ownership loses the slab.
var leakCh = make(chan []byte, 8)

func sendToLeak(pool *par.SlabPool[byte], n int) {
	buf := pool.Get(n)
	leakCh <- buf // want `sent on a channel with no receiving path that releases or retains it`
}

func drainLeak() {
	for b := range leakCh {
		_ = len(b)
	}
}

// consume reads the buffer but never releases it: handing an owned slab
// to it in a goroutine leaks.
func consume(b []byte) int { return len(b) }

func spawnDrop(pool *par.SlabPool[byte], n int) {
	buf := pool.Get(n)
	go consume(buf) // want `handed to a spawned goroutine that neither releases nor retains it`
}
