// Package shedqclean is the non-flagging fixture for deadline-bearing
// queue ownership transfer: every path out of the shed queue discharges
// the payload exactly once — shed at admission returns it to the pool,
// expired entries release at the drop point, and live entries forward
// through the EDF stage to a releasing serve loop.
package shedqclean

import "github.com/neuroscaler/neuroscaler/internal/par"

// entry is one queued job: a deadline tick plus the pooled payload
// whose ownership rides the queue entry.
type entry struct {
	deadlineTick int64
	payload      []byte
}

var (
	pool    par.SlabPool[byte]
	admitCh = make(chan entry, 8)
	serveCh = make(chan entry, 8)
)

// pushOrShed admits the payload into the queue or, when the queue is
// full, releases it at the shed point before reporting backpressure.
func pushOrShed(tick int64, n int, full bool) bool {
	buf := pool.Get(n)
	if full {
		pool.Put(buf)
		return false
	}
	admitCh <- entry{deadlineTick: tick, payload: buf}
	return true
}

// reorder is the EDF stage: expired entries release at the drop point,
// live ones forward to the serving loop. The obligation fixpoint has to
// follow the forward to see the final release.
func reorder(now int64) {
	for e := range admitCh {
		if e.deadlineTick < now {
			pool.Put(e.payload)
			continue
		}
		serveCh <- e
	}
}

// serveLoop hands every served payload to the releasing consumer.
func serveLoop() {
	for e := range serveCh {
		serve(&pool, e.payload)
	}
}

// serve consumes the payload and returns it to the pool: ownership ends
// here on every path.
func serve(p *par.SlabPool[byte], b []byte) {
	p.Put(b)
}
