// Package media is the ledger flagging fixture: a settlement region
// with a path that books nothing, one that double-books, a directive
// naming a counter that does not exist, and one naming a counter that
// is never incremented.
package media

import "sync/atomic"

//nslint:ledger selected == enhanced + dropped + expired // want `ledger counter "expired" is never incremented`
//nslint:ledger selected == enhanced + ghost // want `ledger names unknown counter "ghost"`
type counters struct {
	selected atomic.Uint64
	enhanced atomic.Uint64
	dropped  atomic.Uint64
	expired  atomic.Uint64
}

func (c *counters) count(items []int) {
	for range items {
		c.selected.Add(1)
	}
}

// settle leaves the flag-off path unbooked: those objects leak out of
// the ledger.
func (c *counters) settle(items []int, flag bool) {
	for _, it := range items {
		if it < 0 {
			c.dropped.Add(1)
			continue
		}
		if flag {
			c.enhanced.Add(1)
		} // want `books no ledger counter`
	}
}

// settleDouble books the success outcome on top of the drop outcome.
func (c *counters) settleDouble(ok bool) {
	c.dropped.Add(1)
	if ok {
		c.enhanced.Add(1)
	} // want `books 2 ledger counters`
}
