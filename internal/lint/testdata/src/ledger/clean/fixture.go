// Package clean is the ledger clean fixture: every path through the
// settlement region books exactly one right-hand counter, so the
// conservation law holds and the analyzer must stay silent.
package clean

import "sync/atomic"

//nslint:ledger selected == enhanced + dropped + rejected
type counters struct {
	selected atomic.Uint64
	enhanced atomic.Uint64
	dropped  atomic.Uint64
	rejected atomic.Uint64
}

func (c *counters) count(n int) {
	for i := 0; i < n; i++ {
		c.selected.Add(1)
	}
}

// settle books exactly one outcome per item: early-continue exits and
// the fall-through each carry one increment.
func (c *counters) settle(items []int, validate bool) {
	for _, it := range items {
		if it < 0 {
			c.dropped.Add(1)
			continue
		}
		if validate && it > 100 {
			c.rejected.Add(1)
			continue
		}
		c.enhanced.Add(1)
	}
}

// settleBranches books one outcome on each arm of a switch.
func (c *counters) settleBranches(kinds []int) {
	for _, k := range kinds {
		switch k {
		case 0:
			c.enhanced.Add(1)
		case 1:
			c.dropped.Add(1)
		default:
			c.rejected.Add(1)
		}
	}
}
