// Package edge is the refbalance flagging fixture: every way a
// refcounted handle's per-holder reference can go unbalanced — a leak
// on an early return, a double release, a success-path leak through an
// error-only releasing callee, and a retain grant that goes nowhere.
package edge

type entry struct{ refs int }

func (e *entry) retain()  { e.refs++ }
func (e *entry) release() { e.refs-- }

type cache struct{ m map[int]*entry }

// get returns a retained entry: the caller owns one reference.
func (c *cache) get(k int) (*entry, bool) {
	if e, ok := c.m[k]; ok {
		e.retain()
		return e, true
	}
	return nil, false
}

func use(e *entry) int { return e.refs }

// push consumes nothing: it neither retains nor releases.
func push(e *entry) error {
	if e == nil {
		return errTest
	}
	return nil
}

var errTest error

// send releases its argument only when the push fails — the split
// summary fact callers are judged by.
func send(e *entry) {
	if err := push(e); err != nil {
		e.release()
	}
}

func leakOnEarlyReturn(c *cache, cond bool) int {
	e, ok := c.get(1)
	if !ok {
		return 0
	}
	if cond {
		return 1 // want `is not released, returned, stored, or handed off`
	}
	e.release()
	return 2
}

func doubleRelease(c *cache) {
	e, ok := c.get(2)
	if !ok {
		return
	}
	_ = use(e)
	e.release()
	e.release() // want `released more than once on this path`
}

func leakSuccessPath(c *cache) {
	e, ok := c.get(3)
	if !ok {
		return
	}
	send(e)
} // want `releases it only on the error path`

func grantAndDrop(e *entry) {
	e.retain() // want `retained reference "e" is never handed off`
}
