// Package clean is the refbalance clean fixture: every acquisition is
// discharged — released on all paths, deferred, returned, stored,
// sent, handed to a goroutine, or transferred to a callee that always
// releases — so the analyzer must stay silent.
package clean

type entry struct{ refs int }

func (e *entry) retain()  { e.refs++ }
func (e *entry) release() { e.refs-- }

type cache struct {
	m     map[int]*entry
	ch    chan *entry
	saved *entry
}

func (c *cache) get(k int) (*entry, bool) {
	if e, ok := c.m[k]; ok {
		e.retain()
		return e, true
	}
	return nil, false
}

func use(e *entry) int { return e.refs }

// put always releases: callers transferring to it are discharged.
func put(e *entry) { e.release() }

func releasedOnAllPaths(c *cache, cond bool) int {
	e, ok := c.get(1)
	if !ok {
		return 0
	}
	if cond {
		e.release()
		return 1
	}
	e.release()
	return 2
}

func deferredRelease(c *cache) int {
	e, ok := c.get(2)
	if !ok {
		return 0
	}
	defer e.release()
	return use(e)
}

func returned(c *cache) *entry {
	e, ok := c.get(3)
	if !ok {
		return nil
	}
	return e
}

func stored(c *cache) {
	e, ok := c.get(4)
	if !ok {
		return
	}
	c.saved = e
}

func sent(c *cache) {
	e, ok := c.get(5)
	if !ok {
		return
	}
	c.ch <- e
}

func spawned(c *cache) {
	e, ok := c.get(6)
	if !ok {
		return
	}
	go put(e)
}

func transferred(c *cache) {
	e, ok := c.get(7)
	if !ok {
		return
	}
	_ = use(e)
	put(e)
}

// grantStored retains and immediately hands the reference to a field:
// the waiter-grant shape done right.
func grantStored(c *cache, e *entry) {
	e.retain()
	c.saved = e
}

// constructed binds unconditionally and releases before every exit.
func constructed(cond bool) int {
	e := &entry{}
	if cond {
		e.release()
		return 1
	}
	put(e)
	return 2
}
