package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// lockOrderPkgs are the packages whose mutexes participate in the
// repo-wide acquisition graph: the serving-path state machines that can
// deadlock against each other.
var lockOrderPkgs = []string{"media", "sched", "wire"}

// LockOrder lifts lockhold's per-function view into a repo-wide
// lock-acquisition graph. Where lockhold sees only lexical nesting,
// LockOrder follows calls: holding mutex A while calling a function
// that (transitively, interface dispatch included) acquires mutex B
// creates the edge A -> B. Every edge must appear in the documented
// order (DESIGN.md "Invariants", extended in source with
// //nslint:lock-order A.mu -> B.mu comments); undocumented edges are
// reported with the witness call chain, re-acquisitions of a held mutex
// are flagged as self-deadlocks, and cycles in the combined graph —
// documented plus observed — are reported even when each edge looks
// locally justified.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "build the repo-wide lock-acquisition graph across calls and interface dispatch; " +
		"flag undocumented edges with witness chains, self-deadlocks, and cycles",
	RunProgram: runLockOrder,
}

// lockOrderRe matches the in-source documentation directive, e.g.
// //nslint:lock-order poolReplica.mu -> EnhancerPool.helloMu
var lockOrderDirective = "nslint:lock-order "

// lockEdge is one observed may-happen acquisition order: to is acquired
// (possibly deep in callee) while from is held at pos in node.
type lockEdge struct {
	from, to string
	node     *FuncNode
	pos      token.Pos
	callee   *FuncNode // nil for a lexical (same-function) nesting
}

func runLockOrder(pp *ProgramPass) {
	prog := pp.Prog
	documented := documentedLockOrder(prog)

	var edges []lockEdge
	reportedEdge := map[string]bool{}
	for _, n := range prog.Nodes {
		if !n.inPackages(lockOrderPkgs...) {
			continue
		}
		s := prog.summary(n)
		// Lexical nestings feed the cycle graph only: lockhold already
		// reports undocumented same-function nesting.
		for _, a := range s.acquires {
			if !isFieldLockKey(a.key) {
				continue
			}
			for _, h := range a.held {
				if isFieldLockKey(h) && h != a.key {
					edges = append(edges, lockEdge{from: h, to: a.key, node: n, pos: a.pos})
				}
			}
		}
		// Interprocedural edges: a call under a held mutex reaching a
		// deeper acquisition.
		for _, lc := range s.lockCalls {
			if len(lc.held) == 0 {
				continue
			}
			for _, callee := range lc.site.Callees {
				cs := prog.summary(callee)
				for _, key := range sortedKeys(cs.mayAcquire) {
					if !isFieldLockKey(key) {
						continue
					}
					for _, h := range lc.held {
						if !isFieldLockKey(h) {
							continue
						}
						id := h + "->" + key
						if reportedEdge[id] {
							continue
						}
						if h == key {
							reportedEdge[id] = true
							pp.Reportf(n.Pkg, lc.site.Call.Pos(),
								"calling %s while holding %s can re-acquire %s (%s): self-deadlock on a non-reentrant mutex",
								callee.label(), h, h, witnessChain(prog, callee, key))
							continue
						}
						edges = append(edges, lockEdge{from: h, to: key, node: n, pos: lc.site.Call.Pos(), callee: callee})
						if documented[id] {
							continue
						}
						reportedEdge[id] = true
						contradiction := ""
						if documented[key+"->"+h] {
							contradiction = fmt.Sprintf("; the documented order is the reverse (%s before %s)", key, h)
						}
						pp.Reportf(n.Pkg, lc.site.Call.Pos(),
							"acquiring %s while holding %s via %s is outside the documented lock order%s (see DESIGN.md Invariants); witness: %s",
							key, h, callee.label(), contradiction, witnessChain(prog, callee, key))
					}
				}
			}
		}
	}

	reportLockCycles(pp, documented, edges, reportedEdge)
}

// isFieldLockKey keeps "Type.field" mutex keys and drops bare locals,
// which carry no cross-function identity.
func isFieldLockKey(k string) bool {
	return !strings.HasPrefix(k, ".")
}

// documentedLockOrder merges the built-in allowed order with
// //nslint:lock-order directives found anywhere in the loaded sources.
func documentedLockOrder(prog *Program) map[string]bool {
	out := make(map[string]bool, len(allowedLockOrder))
	for k := range allowedLockOrder {
		out[k] = true
	}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, lockOrderDirective)
					if !ok {
						continue
					}
					parts := strings.SplitN(rest, "->", 2)
					if len(parts) != 2 {
						continue
					}
					from := strings.TrimSpace(parts[0])
					to := strings.TrimSpace(strings.SplitN(parts[1], "--", 2)[0])
					if from != "" && to != "" {
						out[from+"->"+to] = true
					}
				}
			}
		}
	}
	return out
}

// witnessChain renders how callee reaches the acquisition of key:
// "pool.go:210 -> EnhancerPool.syncRegistrationsLocked acquires
// EnhancerPool.helloMu at pool.go:173".
func witnessChain(prog *Program, callee *FuncNode, key string) string {
	var parts []string
	cur := callee
	for depth := 0; cur != nil && depth < 12; depth++ {
		via := prog.summary(cur).mayAcquire[key]
		if via == nil {
			break
		}
		if via.callee == nil {
			parts = append(parts, fmt.Sprintf("%s acquires %s at %s", cur.label(), key, posStr(via.pkg, via.pos)))
			cur = nil
			break
		}
		parts = append(parts, fmt.Sprintf("%s calls %s at %s", cur.label(), via.callee.label(), posStr(via.pkg, via.pos)))
		cur = via.callee
	}
	if len(parts) == 0 {
		return callee.label()
	}
	return strings.Join(parts, ", ")
}

// reportLockCycles finds cycles in the combined documented + observed
// graph. An edge already reported as undocumented is excluded — its
// report stands on its own — so a surviving cycle means every edge
// looked individually legitimate.
func reportLockCycles(pp *ProgramPass, documented map[string]bool, edges []lockEdge, alreadyReported map[string]bool) {
	adj := map[string]map[string]*lockEdge{}
	addEdge := func(from, to string, e *lockEdge) {
		if adj[from] == nil {
			adj[from] = map[string]*lockEdge{}
		}
		if adj[from][to] == nil {
			adj[from][to] = e
		}
	}
	for d := range documented {
		parts := strings.SplitN(d, "->", 2)
		if len(parts) == 2 {
			addEdge(parts[0], parts[1], nil)
		}
	}
	for i := range edges {
		e := &edges[i]
		if alreadyReported[e.from+"->"+e.to] {
			continue
		}
		addEdge(e.from, e.to, e)
	}

	var nodes []string
	for k := range adj {
		nodes = append(nodes, k)
	}
	sort.Strings(nodes)

	reported := map[string]bool{}
	const (
		unvisited = 0
		onStack   = 1
		done      = 2
	)
	state := map[string]int{}
	var stack []string
	var dfs func(k string)
	dfs = func(k string) {
		state[k] = onStack
		stack = append(stack, k)
		var outs []string
		for to := range adj[k] {
			outs = append(outs, to)
		}
		sort.Strings(outs)
		for _, to := range outs {
			switch state[to] {
			case unvisited:
				dfs(to)
			case onStack:
				// Extract the cycle from the stack suffix starting at `to`.
				start := 0
				for i, v := range stack {
					if v == to {
						start = i
						break
					}
				}
				cycle := append(append([]string(nil), stack[start:]...), to)
				id := canonicalCycle(cycle)
				if reported[id] {
					continue
				}
				reported[id] = true
				// Anchor the report at the first observed edge in the cycle;
				// a cycle made purely of documented edges is a documentation
				// bug with no source position, skipped here.
				var at *lockEdge
				for i := 0; i+1 < len(cycle) && at == nil; i++ {
					at = adj[cycle[i]][cycle[i+1]]
				}
				if at == nil {
					continue
				}
				pp.Reportf(at.node.Pkg, at.pos,
					"lock-order cycle %s: two goroutines interleaving these acquisitions deadlock; break the cycle or restructure the documented order",
					strings.Join(cycle, " -> "))
			}
		}
		stack = stack[:len(stack)-1]
		state[k] = done
	}
	for _, k := range nodes {
		if state[k] == unvisited {
			dfs(k)
		}
	}
}

// canonicalCycle names a cycle independent of its starting point.
func canonicalCycle(cycle []string) string {
	body := cycle[:len(cycle)-1]
	min := 0
	for i := range body {
		if body[i] < body[min] {
			min = i
		}
	}
	rot := append(append([]string(nil), body[min:]...), body[:min]...)
	return strings.Join(rot, "->")
}
