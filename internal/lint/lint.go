// Package lint implements nslint: a suite of repo-specific static
// analyzers that mechanically enforce the invariants the NeuroScaler
// serving path depends on — byte-determinism of codec output, paired
// arena Get/Put, deadline-armed connection I/O, no blocking calls under
// locks, mutex-guarded field discipline, %w error wrapping across
// package boundaries, and the three interprocedural properties built on
// the call-graph dataflow layer: pooled-buffer ownership linearity
// (ownership), the repo-wide lock-acquisition order (lockorder), and
// goroutine join evidence (goleak). See DESIGN.md "Invariants" for the
// rationale behind each analyzer and how to suppress a finding.
//
// The framework mirrors golang.org/x/tools/go/analysis in shape but is
// built on the standard library only: packages are resolved and
// type-checked via `go list -export` (see load.go), each Analyzer gets a
// Pass with the ASTs and type information, and diagnostics are filtered
// through //nslint:disable suppressions before reporting.
//
// Program-scoped analyzers additionally see a Program (callgraph.go): a
// call graph over every loaded package — function literals are
// first-class nodes, interface calls resolve to analyzed implementers —
// with per-function summaries (summary.go) of release/transfer
// behavior, lock acquisition sets, and WaitGroup/channel join facts,
// each propagated to fixpoint so evidence several calls away still
// counts.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one nslint check. Per-package analyzers set Run;
// program-scoped analyzers (those that reason across call and package
// boundaries) set RunProgram and execute once per invocation over the
// whole call graph. An analyzer may set both.
type Analyzer struct {
	// Name is the analyzer's identifier, used in reports and in
	// //nslint:disable comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the per-package check, reporting via pass.Reportf.
	Run func(pass *Pass)
	// RunProgram performs the whole-program check. In the vet-tool unit
	// mode only one package is loaded, so the view degrades to an
	// intra-package one; the full cross-package graph needs the
	// standalone driver (`make nslint`).
	RunProgram func(pass *ProgramPass)
}

// Pass carries one package's worth of inputs to an Analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Prog is the whole-run call graph, available to per-package
	// analyzers that want interprocedural context (connio, arenapair).
	Prog *Program

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ProgramPass carries the whole-run inputs to a program-scoped
// Analyzer.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program

	diags *[]Diagnostic
}

// Reportf records a finding at pos, which must belong to pkg's FileSet.
func (p *ProgramPass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All is the full nslint suite in reporting order.
var All = []*Analyzer{
	Determinism,
	ArenaPair,
	ConnIO,
	BudgetFlow,
	FrameCase,
	LockHold,
	SeqSafe,
	ErrWrap,
	Ownership,
	RefBalance,
	Ledger,
	LockOrder,
	GoLeak,
}

// ByName resolves a comma-separated analyzer list ("" selects All).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All, nil
	}
	byName := make(map[string]*Analyzer, len(All))
	for _, a := range All {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunOption adjusts Run's behavior.
type RunOption func(*runConfig)

type runConfig struct {
	noStaleCheck bool
}

// NoStaleCheck disables stale-suppression reporting. The vet unit mode
// uses it: with only one package loaded, program-scoped analyzers see a
// degraded graph and may legitimately not produce the finding a
// directive suppresses under the standalone driver.
func NoStaleCheck() RunOption {
	return func(c *runConfig) { c.noStaleCheck = true }
}

// Run executes the analyzers over the packages and returns the surviving
// diagnostics, sorted by position. Suppressed findings are dropped;
// malformed suppressions (no "-- reason") are themselves reported, and
// so are stale ones — a directive naming an analyzer in the run set
// that suppressed nothing this run (the justification ledger stays
// honest as analyzers evolve). Suppressions from every package are
// merged into one filename/line index so program-scoped findings honor
// them no matter which package's pass surfaced them.
func Run(pkgs []*Package, analyzers []*Analyzer, opts ...RunOption) []Diagnostic {
	var cfg runConfig
	for _, o := range opts {
		o(&cfg)
	}
	prog := BuildProgram(pkgs)
	sup := &suppressions{byFileLine: make(map[string]map[int][]*supEntry)}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		pkgSup, bad := collectSuppressions(pkg)
		diags = append(diags, bad...)
		for file, lines := range pkgSup.byFileLine {
			if sup.byFileLine[file] == nil {
				sup.byFileLine[file] = lines
				continue
			}
			for line, names := range lines {
				sup.byFileLine[file][line] = append(sup.byFileLine[file][line], names...)
			}
		}
	}
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			a.Run(&Pass{Analyzer: a, Pkg: pkg, Prog: prog, diags: &raw})
		}
	}
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		a.RunProgram(&ProgramPass{Analyzer: a, Prog: prog, diags: &raw})
	}
	for _, d := range raw {
		if sup.covers(d) {
			continue
		}
		diags = append(diags, d)
	}
	if !cfg.noStaleCheck {
		ran := make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			ran[a.Name] = true
		}
		for _, lines := range sup.byFileLine {
			for _, entries := range lines {
				for _, e := range entries {
					if e.used || (e.name != "*" && !ran[e.name]) {
						continue
					}
					diags = append(diags, Diagnostic{
						Pos:      e.pos,
						Analyzer: "nslint",
						Message:  fmt.Sprintf("stale suppression: no %q finding is reported here anymore; delete the directive", e.name),
					})
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// suppressions indexes //nslint:disable comments: a finding on line L of
// a file is suppressed when a disable comment for its analyzer sits on
// line L or L-1.
type suppressions struct {
	// byFileLine maps filename -> line -> directive entries active there
	// (an entry naming "*" disables every analyzer).
	byFileLine map[string]map[int][]*supEntry
}

// supEntry is one analyzer name from one //nslint:disable directive.
// used flips when the entry actually absorbs a diagnostic, so unused
// directives can be reported as stale.
type supEntry struct {
	name string
	pos  token.Position
	used bool
}

// suppressRe is anchored to the comment's start so prose that merely
// quotes the directive form (analyzer doc comments) is not indexed.
var suppressRe = regexp.MustCompile(`^//\s*nslint:disable\s+([a-z*,\s]+?)\s*(?:--\s*(.*))?$`)

// collectSuppressions scans a package's comments for nslint directives.
// A directive without a non-empty "-- reason" clause is itself a
// diagnostic: suppressions must be justified.
func collectSuppressions(pkg *Package) (*suppressions, []Diagnostic) {
	s := &suppressions{byFileLine: make(map[string]map[int][]*supEntry)}
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := suppressRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if strings.TrimSpace(m[2]) == "" {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: "nslint",
						Message:  `suppression needs a justification: //nslint:disable <name> -- reason`,
					})
					continue
				}
				lines := s.byFileLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*supEntry)
					s.byFileLine[pos.Filename] = lines
				}
				for _, name := range strings.Split(m[1], ",") {
					name = strings.TrimSpace(name)
					if name != "" {
						lines[pos.Line] = append(lines[pos.Line], &supEntry{name: name, pos: pos})
					}
				}
			}
		}
	}
	return s, bad
}

func (s *suppressions) covers(d Diagnostic) bool {
	lines := s.byFileLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	covered := false
	for _, l := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, e := range lines[l] {
			if e.name == d.Analyzer || e.name == "*" {
				// Mark every matching entry, not just the first: two
				// directives both absorbing the finding are both earning
				// their keep, neither is stale.
				e.used = true
				covered = true
			}
		}
	}
	return covered
}

// pathBase returns the last segment of an import path: the package-level
// scoping unit analyzers match against, so fixture packages under
// testdata can stand in for the real tree.
func pathBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// inPackages reports whether the pass's package is one of names, matched
// by import-path base.
func (p *Pass) inPackages(names ...string) bool {
	base := pathBase(p.Pkg.Path)
	for _, n := range names {
		if base == n {
			return true
		}
	}
	return false
}

// eachFunc walks every function declaration (methods included) in the
// package, skipping test files.
func (p *Pass) eachFunc(fn func(decl *ast.FuncDecl)) {
	for _, f := range p.Pkg.Files {
		name := p.Pkg.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// eachFile visits every non-test file.
func (p *Pass) eachFile(fn func(f *ast.File)) {
	for _, f := range p.Pkg.Files {
		name := p.Pkg.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		fn(f)
	}
}
