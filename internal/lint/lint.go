// Package lint implements nslint: a suite of repo-specific static
// analyzers that mechanically enforce the invariants the NeuroScaler
// serving path depends on — byte-determinism of codec output, paired
// arena Get/Put, deadline-armed connection I/O, no blocking calls under
// locks, mutex-guarded field discipline, and %w error wrapping across
// package boundaries. See DESIGN.md "Invariants" for the rationale
// behind each analyzer and how to suppress a finding.
//
// The framework mirrors golang.org/x/tools/go/analysis in shape but is
// built on the standard library only: packages are resolved and
// type-checked via `go list -export` (see load.go), each Analyzer gets a
// Pass with the ASTs and type information, and diagnostics are filtered
// through //nslint:disable suppressions before reporting.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one nslint check.
type Analyzer struct {
	// Name is the analyzer's identifier, used in reports and in
	// //nslint:disable comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the check, reporting findings via pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one package's worth of inputs to an Analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All is the full nslint suite in reporting order.
var All = []*Analyzer{
	Determinism,
	ArenaPair,
	ConnIO,
	LockHold,
	SeqSafe,
	ErrWrap,
}

// ByName resolves a comma-separated analyzer list ("" selects All).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All, nil
	}
	byName := make(map[string]*Analyzer, len(All))
	for _, a := range All {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run executes the analyzers over the packages and returns the surviving
// diagnostics, sorted by position. Suppressed findings are dropped;
// malformed suppressions (no "-- reason") are themselves reported.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup, bad := collectSuppressions(pkg)
		diags = append(diags, bad...)
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &raw}
			a.Run(pass)
		}
		for _, d := range raw {
			if sup.covers(d) {
				continue
			}
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// suppressions indexes //nslint:disable comments: a finding on line L of
// a file is suppressed when a disable comment for its analyzer sits on
// line L or L-1.
type suppressions struct {
	// byFileLine maps filename -> line -> analyzer names disabled there
	// ("*" disables every analyzer).
	byFileLine map[string]map[int][]string
}

var suppressRe = regexp.MustCompile(`//\s*nslint:disable\s+([a-z*,\s]+?)\s*(?:--\s*(.*))?$`)

// collectSuppressions scans a package's comments for nslint directives.
// A directive without a non-empty "-- reason" clause is itself a
// diagnostic: suppressions must be justified.
func collectSuppressions(pkg *Package) (*suppressions, []Diagnostic) {
	s := &suppressions{byFileLine: make(map[string]map[int][]string)}
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := suppressRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if strings.TrimSpace(m[2]) == "" {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: "nslint",
						Message:  `suppression needs a justification: //nslint:disable <name> -- reason`,
					})
					continue
				}
				lines := s.byFileLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					s.byFileLine[pos.Filename] = lines
				}
				for _, name := range strings.Split(m[1], ",") {
					name = strings.TrimSpace(name)
					if name != "" {
						lines[pos.Line] = append(lines[pos.Line], name)
					}
				}
			}
		}
	}
	return s, bad
}

func (s *suppressions) covers(d Diagnostic) bool {
	lines := s.byFileLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, l := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, name := range lines[l] {
			if name == d.Analyzer || name == "*" {
				return true
			}
		}
	}
	return false
}

// pathBase returns the last segment of an import path: the package-level
// scoping unit analyzers match against, so fixture packages under
// testdata can stand in for the real tree.
func pathBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// inPackages reports whether the pass's package is one of names, matched
// by import-path base.
func (p *Pass) inPackages(names ...string) bool {
	base := pathBase(p.Pkg.Path)
	for _, n := range names {
		if base == n {
			return true
		}
	}
	return false
}

// eachFunc walks every function declaration (methods included) in the
// package, skipping test files.
func (p *Pass) eachFunc(fn func(decl *ast.FuncDecl)) {
	for _, f := range p.Pkg.Files {
		name := p.Pkg.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// eachFile visits every non-test file.
func (p *Pass) eachFile(fn func(f *ast.File)) {
	for _, f := range p.Pkg.Files {
		name := p.Pkg.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		fn(f)
	}
}
