package lint

import (
	"strings"
)

// goLeakPkgs are the packages whose goroutines must be joinable: the
// serving path and its direct infrastructure. Binaries under cmd/ and
// examples/ own process-lifetime goroutines and are out of scope.
var goLeakPkgs = []string{"media", "wire", "sched", "enhance", "par", "driver", "faults", "edge"}

// GoLeak requires statically-visible join evidence for every spawned
// goroutine: the Server accept loop, the EnhancerPool heartbeat, and
// the RemoteEnhancer reader must all be provably collectable at Close,
// or a reconnect churn test turns into a goroutine leak. Evidence is
// any of:
//
//   - WaitGroup balance: some function Adds on the same WaitGroup
//     (matched by "Type.field" across functions, or by object identity
//     for locals captured by closures) and the spawned body Dones on it,
//     directly or through a callee — `pc.wg.Add(n)` before
//     `go s.enhanceAnchor(pc, si)` with `defer pc.wg.Done()` inside;
//   - a closed-channel wait: the spawned body receives from or ranges
//     over a channel that some statement in the program closes —
//     `for f := range tasks` joined by `close(pool)`, or a
//     `select { case <-p.closed: }` paired with `close(p.closed)`;
//   - a justified bounded-lifetime annotation:
//     //nslint:disable goleak -- reason, on or above the go statement.
//
// Both forms follow the call graph: the Done or the channel wait may
// live in a callee of the spawned function, and parameter-passed
// WaitGroups and channels are mapped through the spawn's arguments.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc: "require join evidence for every spawned goroutine: WaitGroup Add/Done balance, " +
		"a wait on a channel the program closes, or an annotated bounded lifetime",
	RunProgram: runGoLeak,
}

func runGoLeak(pp *ProgramPass) {
	prog := pp.Prog
	// Field-keyed WaitGroup Adds are program-wide evidence: the Add and
	// the spawn often live in different methods of the same type.
	fieldAdds := map[string]bool{}
	for _, n := range prog.Nodes {
		for key := range prog.summary(n).addsOn {
			if !strings.HasPrefix(key, "@") {
				fieldAdds[key] = true
			}
		}
	}
	for _, n := range prog.Nodes {
		if !n.inPackages(goLeakPkgs...) {
			continue
		}
		for _, sp := range n.Spawns {
			if hasJoinEvidence(prog, n, sp, fieldAdds) {
				continue
			}
			pp.Reportf(n.Pkg, sp.Go.Pos(),
				"goroutine spawned here has no statically-visible join evidence: balance a WaitGroup Add/Done "+
					"across the spawn, wait on a channel the program closes, or justify a bounded lifetime "+
					"with //nslint:disable goleak -- reason")
		}
	}
}

// hasJoinEvidence checks one spawn site. Every resolved target must
// carry evidence (static spawns resolve to exactly one).
func hasJoinEvidence(prog *Program, n *FuncNode, sp *SpawnSite, fieldAdds map[string]bool) bool {
	pass := n.pass(prog)
	localAdds := map[string]bool{}
	for anc := n; anc != nil; anc = anc.Parent {
		for key := range prog.summary(anc).addsOn {
			localAdds[key] = true
		}
	}
	addEvidence := func(key string) bool {
		if strings.HasPrefix(key, "@") {
			return localAdds[key]
		}
		return fieldAdds[key]
	}

	var targets []*FuncNode
	if sp.Lit != nil {
		targets = []*FuncNode{sp.Lit}
	} else {
		targets = sp.Callees
	}
	if len(targets) == 0 {
		return false
	}
	for _, t := range targets {
		ts := prog.summary(t)
		ok := false
		for key := range ts.donesOn {
			if addEvidence(key) {
				ok = true
				break
			}
		}
		if !ok {
			for j := range ts.wgDoneParams {
				if j >= len(sp.Go.Call.Args) {
					continue
				}
				if key, has := wgKey(pass, stripAddr(sp.Go.Call.Args[j])); has && addEvidence(key) {
					ok = true
					break
				}
			}
		}
		if !ok {
			for key := range ts.waitsOnChans {
				if prog.closedChans[key] {
					ok = true
					break
				}
			}
		}
		if !ok {
			for j := range ts.waitsOnParams {
				if j >= len(sp.Go.Call.Args) {
					continue
				}
				if key, has := chanKey(pass, sp.Go.Call.Args[j]); has && prog.closedChans[key] {
					ok = true
					break
				}
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
