// Package h26x demonstrates the codec neutrality of zero-inference anchor
// selection (§9 of the paper): the algorithm only needs (a) frame tiers
// ordered by degree of reference and (b) per-frame residual sizes, both of
// which H.26x codecs expose as I/P/B slice types and coded residuals. This
// package maps hierarchical-GOP H.26x stream metadata onto the selection
// tiers (G_I -> key tier, G_P -> altref tier, G_B -> normal tier, exactly
// the substitution §9 describes) and provides a synthetic H.26x stream
// descriptor so the mapping can be exercised without an H.26x decoder.
package h26x

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/neuroscaler/neuroscaler/internal/anchor"
	"github.com/neuroscaler/neuroscaler/internal/vcodec"
)

// SliceType is the H.26x frame classification.
type SliceType uint8

const (
	// SliceI is an intra frame (IDR): the highest-reference tier.
	SliceI SliceType = iota
	// SliceP is a predicted frame referenced by the B frames around it.
	SliceP
	// SliceB is a bi-predicted frame, typically referenced little or not
	// at all.
	SliceB
)

// String implements fmt.Stringer.
func (t SliceType) String() string {
	switch t {
	case SliceI:
		return "I"
	case SliceP:
		return "P"
	default:
		return "B"
	}
}

// FrameInfo is the codec-level metadata of one H.26x frame, as a parser
// would extract it from slice headers.
type FrameInfo struct {
	// POC is the picture order count (display order).
	POC int
	// Type is the slice type.
	Type SliceType
	// ResidualBytes is the size of the coded residual.
	ResidualBytes int
	// TemporalLayer is the hierarchical-B pyramid layer (0 = base).
	TemporalLayer int
}

// tierOf maps an H.26x slice type onto the selection tiers. The
// anchor package expresses tiers through vcodec.FrameType, which here
// carries tier semantics rather than codec identity: I maps to the
// key tier, P to the altref (mid) tier, B to the normal tier.
func tierOf(t SliceType) vcodec.FrameType {
	switch t {
	case SliceI:
		return vcodec.Key
	case SliceP:
		return vcodec.AltRef
	default:
		return vcodec.Inter
	}
}

// ToMetas converts H.26x frame metadata (in decode order) into the
// anchor selector's input.
func ToMetas(frames []FrameInfo) ([]anchor.FrameMeta, error) {
	out := make([]anchor.FrameMeta, len(frames))
	for i, f := range frames {
		if f.ResidualBytes < 0 {
			return nil, fmt.Errorf("h26x: frame %d has negative residual", i)
		}
		res := float64(f.ResidualBytes)
		if f.Type == SliceI {
			res = 0 // intra frames reset accumulation, as key frames do
		}
		out[i] = anchor.FrameMeta{
			Packet:       i,
			Type:         tierOf(f.Type),
			DisplayIndex: f.POC,
			Residual:     res,
		}
	}
	return out, nil
}

// SelectAnchors runs zero-inference selection over H.26x metadata and
// returns the chosen frame indices (positions in the input slice) in
// priority order.
func SelectAnchors(frames []FrameInfo, n int) ([]int, error) {
	if n < 0 {
		return nil, errors.New("h26x: negative anchor count")
	}
	metas, err := ToMetas(frames)
	if err != nil {
		return nil, err
	}
	cands := anchor.ZeroInferenceGains(metas)
	selected := anchor.SelectTopN(cands, n)
	out := make([]int, len(selected))
	for i, c := range selected {
		out[i] = c.Meta.Packet
	}
	return out, nil
}

// SyntheticGOP generates the metadata of one hierarchical H.26x GOP in
// decode order: an IDR frame, P frames every miniGOP pictures, and a
// B-pyramid between them. Residual sizes grow with temporal layer and
// motion, deterministic in seed.
func SyntheticGOP(gopLen, miniGOP int, motion float64, seed int64) ([]FrameInfo, error) {
	if gopLen < 1 {
		return nil, errors.New("h26x: GOP length must be >= 1")
	}
	if miniGOP < 1 || miniGOP > gopLen {
		return nil, fmt.Errorf("h26x: mini-GOP %d out of [1, %d]", miniGOP, gopLen)
	}
	if motion <= 0 {
		return nil, errors.New("h26x: motion must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	var out []FrameInfo
	out = append(out, FrameInfo{POC: 0, Type: SliceI})
	for start := 0; start+miniGOP <= gopLen-1 || start == 0 && gopLen > 1; start += miniGOP {
		end := start + miniGOP
		if end > gopLen-1 {
			end = gopLen - 1
		}
		if end == start {
			break
		}
		// Anchor P frame of the mini-GOP, coded first.
		out = append(out, FrameInfo{
			POC:           end,
			Type:          SliceP,
			ResidualBytes: int(motion * (600 + 400*rng.Float64())),
			TemporalLayer: 0,
		})
		// B-pyramid over (start, end), middle-out.
		appendPyramid(&out, rng, motion, start, end, 1)
		if end == gopLen-1 {
			break
		}
	}
	return out, nil
}

// appendPyramid emits the hierarchical B frames of an open interval.
func appendPyramid(out *[]FrameInfo, rng *rand.Rand, motion float64, lo, hi, layer int) {
	if hi-lo < 2 {
		return
	}
	mid := (lo + hi) / 2
	*out = append(*out, FrameInfo{
		POC:           mid,
		Type:          SliceB,
		ResidualBytes: int(motion * float64(layer) * (150 + 150*rng.Float64())),
		TemporalLayer: layer,
	})
	appendPyramid(out, rng, motion, lo, mid, layer+1)
	appendPyramid(out, rng, motion, mid, hi, layer+1)
}
