package h26x

import (
	"testing"

	"github.com/neuroscaler/neuroscaler/internal/anchor"
	"github.com/neuroscaler/neuroscaler/internal/vcodec"
)

func TestSyntheticGOPStructure(t *testing.T) {
	frames, err := SyntheticGOP(17, 4, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if frames[0].Type != SliceI || frames[0].POC != 0 {
		t.Fatalf("first frame = %+v, want IDR at POC 0", frames[0])
	}
	pocs := make(map[int]bool)
	var nI, nP, nB int
	for _, f := range frames {
		if pocs[f.POC] {
			t.Fatalf("duplicate POC %d", f.POC)
		}
		pocs[f.POC] = true
		switch f.Type {
		case SliceI:
			nI++
		case SliceP:
			nP++
		case SliceB:
			nB++
		}
	}
	if nI != 1 {
		t.Errorf("IDR count = %d, want 1", nI)
	}
	if nP != 4 { // P frames at POC 4, 8, 12, 16
		t.Errorf("P count = %d, want 4", nP)
	}
	if nB == 0 {
		t.Error("no B frames in a hierarchical GOP")
	}
	// B frames carry temporal layers >= 1.
	for _, f := range frames {
		if f.Type == SliceB && f.TemporalLayer < 1 {
			t.Errorf("B frame at POC %d on layer %d", f.POC, f.TemporalLayer)
		}
	}
}

func TestSyntheticGOPValidation(t *testing.T) {
	if _, err := SyntheticGOP(0, 4, 1, 1); err == nil {
		t.Error("zero GOP accepted")
	}
	if _, err := SyntheticGOP(8, 0, 1, 1); err == nil {
		t.Error("zero mini-GOP accepted")
	}
	if _, err := SyntheticGOP(8, 4, 0, 1); err == nil {
		t.Error("zero motion accepted")
	}
	if _, err := SyntheticGOP(8, 9, 1, 1); err == nil {
		t.Error("mini-GOP larger than GOP accepted")
	}
}

func TestToMetasMapping(t *testing.T) {
	frames := []FrameInfo{
		{POC: 0, Type: SliceI, ResidualBytes: 999}, // intra residual ignored
		{POC: 4, Type: SliceP, ResidualBytes: 700},
		{POC: 2, Type: SliceB, ResidualBytes: 300},
	}
	metas, err := ToMetas(frames)
	if err != nil {
		t.Fatal(err)
	}
	if metas[0].Type != vcodec.Key || metas[0].Residual != 0 {
		t.Errorf("I mapping = %+v", metas[0])
	}
	if metas[1].Type != vcodec.AltRef || metas[1].Residual != 700 {
		t.Errorf("P mapping = %+v", metas[1])
	}
	if metas[2].Type != vcodec.Inter || metas[2].Residual != 300 {
		t.Errorf("B mapping = %+v", metas[2])
	}
	if _, err := ToMetas([]FrameInfo{{ResidualBytes: -1}}); err == nil {
		t.Error("negative residual accepted")
	}
}

func TestSelectAnchorsTierPriority(t *testing.T) {
	frames, err := SyntheticGOP(33, 4, 1.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	// With a budget of 1 + #P frames, selection must be exactly the IDR
	// plus every P frame before any B frame.
	nP := 0
	for _, f := range frames {
		if f.Type == SliceP {
			nP++
		}
	}
	picks, err := SelectAnchors(frames, 1+nP)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != 1+nP {
		t.Fatalf("selected %d anchors, want %d", len(picks), 1+nP)
	}
	if frames[picks[0]].Type != SliceI {
		t.Errorf("first pick is %v, want I", frames[picks[0]].Type)
	}
	for _, idx := range picks[1:] {
		if frames[idx].Type != SliceP {
			t.Errorf("pick %d is %v, want P (tier priority)", idx, frames[idx].Type)
		}
	}
	// One more anchor: the first B pick must be a low-layer (impactful) B.
	picks, err = SelectAnchors(frames, 2+nP)
	if err != nil {
		t.Fatal(err)
	}
	last := frames[picks[len(picks)-1]]
	if last.Type != SliceB {
		t.Fatalf("overflow pick is %v, want B", last.Type)
	}
	if last.TemporalLayer > 2 {
		t.Errorf("first B pick from layer %d; gain ordering should prefer low layers", last.TemporalLayer)
	}
}

func TestSelectAnchorsValidation(t *testing.T) {
	frames, _ := SyntheticGOP(9, 4, 1, 1)
	if _, err := SelectAnchors(frames, -1); err == nil {
		t.Error("negative count accepted")
	}
	picks, err := SelectAnchors(frames, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != len(frames) {
		t.Errorf("oversized budget selected %d of %d", len(picks), len(frames))
	}
}

func TestGainsUseResidualAccumulation(t *testing.T) {
	// Two B frames, the earlier one preceded by heavy residuals: the
	// gain machinery must order them by accumulated-residual relief, the
	// same invariant the VPx-tier path has.
	frames := []FrameInfo{
		{POC: 0, Type: SliceI},
		{POC: 4, Type: SliceP, ResidualBytes: 100},
		{POC: 2, Type: SliceB, ResidualBytes: 5000},
		{POC: 1, Type: SliceB, ResidualBytes: 10},
		{POC: 3, Type: SliceB, ResidualBytes: 10},
	}
	metas, err := ToMetas(frames)
	if err != nil {
		t.Fatal(err)
	}
	cands := anchor.ZeroInferenceGains(metas)
	if cands[2].Gain <= cands[4].Gain {
		t.Errorf("heavy-residual B gain %v <= light B gain %v", cands[2].Gain, cands[4].Gain)
	}
}
