package driver

import (
	"context"
	"testing"
	"time"

	"github.com/neuroscaler/neuroscaler/internal/cluster"
	"github.com/neuroscaler/neuroscaler/internal/enhance"
	"github.com/neuroscaler/neuroscaler/internal/frame"
	"github.com/neuroscaler/neuroscaler/internal/gpu"
	"github.com/neuroscaler/neuroscaler/internal/hybrid"
	"github.com/neuroscaler/neuroscaler/internal/metrics"
	"github.com/neuroscaler/neuroscaler/internal/sched"
	"github.com/neuroscaler/neuroscaler/internal/sr"
	"github.com/neuroscaler/neuroscaler/internal/synth"
	"github.com/neuroscaler/neuroscaler/internal/vcodec"
)

const (
	scale = 3
	lrW   = 96
	lrH   = 64
	gop   = 24
)

func newEnhancers(t *testing.T, n int) []*enhance.Enhancer {
	t.Helper()
	out := make([]*enhance.Enhancer, n)
	for i := range out {
		dev, err := gpu.NewDevice(cluster.GPUT4, gpu.Options{PreOptimize: true, PreAllocate: true})
		if err != nil {
			t.Fatal(err)
		}
		if out[i], err = enhance.New(dev); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// testStream builds a driver stream plus its encoded interval packets and
// ground truth.
func testStream(t *testing.T, id int, content string, frames int) (*Stream, [][]byte, []*frame.Frame) {
	t.Helper()
	prof, err := synth.ProfileByName(content)
	if err != nil {
		t.Fatal(err)
	}
	g, err := synth.NewGenerator(prof, lrW*scale, lrH*scale, int64(id))
	if err != nil {
		t.Fatal(err)
	}
	hr := g.GenerateChunk(frames)
	lr := make([]*frame.Frame, frames)
	for i, f := range hr {
		if lr[i], err = frame.Downscale(f, scale); err != nil {
			t.Fatal(err)
		}
	}
	cfg := vcodec.Config{Width: lrW, Height: lrH, FPS: 30, BitrateKbps: 500, GOP: gop}
	enc, err := vcodec.NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vstream, err := enc.EncodeAll(lr)
	if err != nil {
		t.Fatal(err)
	}
	model, err := sr.NewOracleModel(sr.HighQuality(), hr)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(id, enc.Config(), scale, model, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	packets := make([][]byte, len(vstream.Packets))
	for i, p := range vstream.Packets {
		packets[i] = p.Data
	}
	return s, packets, hr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(sched.CostEffective(), nil); err == nil {
		t.Error("no enhancers accepted")
	}
	if _, err := NewStream(1, vcodec.Config{Width: 10, Height: 10}, 3, nil, 0.1); err == nil {
		t.Error("nil model accepted")
	}
	model, _ := sr.NewBicubicModel(3)
	if _, err := NewStream(1, vcodec.Config{Width: 10, Height: 10}, 3, model, 0.5); err == nil {
		t.Error("excess anchor fraction accepted")
	}
}

func TestRunIntervalEndToEnd(t *testing.T) {
	d, err := New(sched.CostEffective(), newEnhancers(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	s1, pkts1, hr1 := testStream(t, 1, "lol", gop)
	s2, pkts2, hr2 := testStream(t, 2, "gta", gop)
	report, err := d.RunInterval(context.Background(), []IntervalInput{
		{Stream: s1, Packets: pkts1},
		{Stream: s2, Packets: pkts2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Outputs) != 2 {
		t.Fatalf("%d outputs", len(report.Outputs))
	}
	if report.Scheduled == 0 {
		t.Fatal("no anchors scheduled")
	}
	// Load bounded by the policy interval.
	for i, load := range report.LoadPerInstance {
		if load > sched.CostEffective().Interval {
			t.Errorf("instance %d load %v exceeds interval", i, load)
		}
	}
	// Outputs decodable by a client with reasonable quality.
	for _, out := range report.Outputs {
		if out.Anchors == 0 {
			t.Errorf("stream %d got no anchors", out.StreamID)
		}
		frames, err := hybrid.Decode(out.Container)
		if err != nil {
			t.Fatalf("stream %d: %v", out.StreamID, err)
		}
		hr := hr1
		if out.StreamID == 2 {
			hr = hr2
		}
		psnr, err := metrics.MeanPSNR(hr, frames)
		if err != nil {
			t.Fatal(err)
		}
		if psnr < 24 {
			t.Errorf("stream %d client PSNR %.2f dB", out.StreamID, psnr)
		}
	}
}

func TestRunIntervalStateAcrossIntervals(t *testing.T) {
	d, err := New(sched.CostEffective(), newEnhancers(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	s, pkts, _ := testStream(t, 1, "chat", 2*gop)
	// Split at the second key packet: the stream's decoder must carry
	// reference state across intervals. Locate it with a probe decoder.
	split := 0
	probe, _ := vcodec.NewDecoder(lrW, lrH)
	for i, pkt := range pkts {
		dec, err := probe.Decode(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && dec.Info.Type == vcodec.Key {
			split = i
			break
		}
	}
	if split == 0 {
		t.Fatal("no second GOP found")
	}
	for _, window := range [][2]int{{0, split}, {split, len(pkts)}} {
		if _, err := d.RunInterval(context.Background(), []IntervalInput{
			{Stream: s, Packets: pkts[window[0]:window[1]]},
		}); err != nil {
			t.Fatalf("interval %v: %v", window, err)
		}
	}
}

func TestRunIntervalRejectsDuplicates(t *testing.T) {
	d, err := New(sched.CostEffective(), newEnhancers(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	s, pkts, _ := testStream(t, 1, "lol", gop)
	_, err = d.RunInterval(context.Background(), []IntervalInput{
		{Stream: s, Packets: pkts[:1]},
		{Stream: s, Packets: pkts[1:]},
	})
	if err == nil {
		t.Error("duplicate stream IDs accepted")
	}
}

func TestRunIntervalHonorsContext(t *testing.T) {
	d, err := New(sched.CostEffective(), newEnhancers(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	s, pkts, _ := testStream(t, 1, "lol", gop)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = d.RunInterval(ctx, []IntervalInput{{Stream: s, Packets: pkts}})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("RunInterval hung under a cancelled context")
	}
}
