package driver

import (
	"sync"
	"testing"
	"time"

	"github.com/neuroscaler/neuroscaler/internal/edge"
	"github.com/neuroscaler/neuroscaler/internal/frame"
	"github.com/neuroscaler/neuroscaler/internal/media"
	"github.com/neuroscaler/neuroscaler/internal/sr"
	"github.com/neuroscaler/neuroscaler/internal/synth"
	"github.com/neuroscaler/neuroscaler/internal/vcodec"
	"github.com/neuroscaler/neuroscaler/internal/wire"
)

const (
	fanoutScale = 3
	fanoutLRW   = 96
	fanoutLRH   = 64
	fanoutGOP   = 12
)

func fanoutQuietf(string, ...any) {}

// fanoutOrigin boots a media origin holding chunksPer chunks for each
// stream. Mirrors the edge package's test origin: synthetic content,
// oracle models, a single-replica enhancer pool whose call counter
// measures enhancement work.
type fanoutOrigin struct {
	srv  *media.Server
	pool *media.EnhancerPool
}

func startFanoutOrigin(tb testing.TB, cfg media.ServerConfig, streams []uint32, chunksPer int) *fanoutOrigin {
	tb.Helper()
	var mu sync.Mutex
	hrByStream := make(map[uint32][]*frame.Frame)
	provider := func(streamID uint32, h wire.Hello) (sr.Model, error) {
		mu.Lock()
		defer mu.Unlock()
		return sr.NewOracleModel(h.Model, hrByStream[streamID])
	}
	local, err := media.NewLocalEnhancer(provider)
	if err != nil {
		tb.Fatal(err)
	}
	pool, err := media.NewEnhancerPool(
		[]media.Replica{media.StaticReplica("solo", local)},
		media.PoolConfig{Logf: fanoutQuietf},
	)
	if err != nil {
		tb.Fatal(err)
	}
	cfg.AnchorFraction = 0.10
	cfg.Logf = fanoutQuietf
	srv, err := media.NewServer("127.0.0.1:0", pool, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() {
		_ = srv.Close()
		_ = pool.Close()
	})
	prof, err := synth.ProfileByName("lol")
	if err != nil {
		tb.Fatal(err)
	}
	for _, id := range streams {
		gen, err := synth.NewGenerator(prof, fanoutLRW*fanoutScale, fanoutLRH*fanoutScale, int64(id))
		if err != nil {
			tb.Fatal(err)
		}
		hr := gen.GenerateChunk(fanoutGOP * chunksPer)
		mu.Lock()
		hrByStream[id] = hr
		mu.Unlock()
		streamer, err := media.NewStreamer(srv.Addr(), id, wire.Hello{
			Config: vcodec.Config{
				Width: fanoutLRW, Height: fanoutLRH, FPS: 30, BitrateKbps: 700,
				GOP: fanoutGOP, Mode: vcodec.ModeConstrainedVBR,
			},
			Scale: fanoutScale, Model: sr.HighQuality(), Content: "lol",
		})
		if err != nil {
			tb.Fatal(err)
		}
		for c := 0; c < chunksPer; c++ {
			lr := make([]*frame.Frame, fanoutGOP)
			for i := range lr {
				if lr[i], err = frame.Downscale(hr[c*fanoutGOP+i], fanoutScale); err != nil {
					tb.Fatal(err)
				}
			}
			if _, err := streamer.SendChunk(lr); err != nil {
				tb.Fatalf("stream %d chunk %d: %v", id, c, err)
			}
		}
		if err := streamer.Close(); err != nil {
			tb.Fatal(err)
		}
	}
	return &fanoutOrigin{srv: srv, pool: pool}
}

func startFanoutEdge(tb testing.TB, origin *fanoutOrigin, cfg edge.Config) *edge.Edge {
	tb.Helper()
	cfg.Upstream = origin.srv.Addr()
	if cfg.Logf == nil {
		cfg.Logf = fanoutQuietf
	}
	e, err := edge.NewEdge("127.0.0.1:0", cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { _ = e.Close() })
	return e
}

func TestRunFanout(t *testing.T) {
	streams := []uint32{11, 12, 13}
	const chunksPer = 2
	origin := startFanoutOrigin(t, media.ServerConfig{LazyEnhancement: true}, streams, chunksPer)
	e := startFanoutEdge(t, origin, edge.Config{})

	rep, err := RunFanout(FanoutConfig{
		EdgeAddr:          e.Addr(),
		Streams:           streams,
		ChunksPerStream:   chunksPer,
		Viewers:           8,
		SubscribeFraction: 0.25,
		Seed:              1,
		Flash:             &FlashCrowd{Stream: streams[0], AtChunk: 0, ExtraViewers: 4},
		FetchTimeout:      30 * time.Second,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("fanout errors: %+v", rep)
	}
	if rep.FlashViewers != 4 {
		t.Fatalf("flash viewers = %d, want 4", rep.FlashViewers)
	}
	// 6 initial pullers + 4 flash pullers, one catalog pass each.
	if want := int64(10 * chunksPer); rep.Delivered != want {
		t.Fatalf("delivered = %d, want %d", rep.Delivered, want)
	}
	if rep.EgressChunksPerSec <= 0 {
		t.Fatalf("no egress rate: %+v", rep)
	}

	c := e.Counters()
	// At most one miss per distinct (stream, chunk): single flight plus
	// the cache keep duplicate pulls off the origin.
	if max := uint64(len(streams) * chunksPer); c.CacheMisses > max {
		t.Fatalf("misses = %d, want <= %d", c.CacheMisses, max)
	}
	if c.AmortizedRate() <= 0.5 {
		t.Fatalf("amortized rate = %.2f, want > 0.5 (%+v)", c.AmortizedRate(), c)
	}
	// Origin enhanced each chunk at most once (1 anchor per chunk at
	// the test anchor fraction).
	if calls := origin.pool.Counters().Calls; calls > uint64(len(streams)*chunksPer) {
		t.Fatalf("pool calls = %d, want <= %d", calls, len(streams)*chunksPer)
	}
	t.Logf("fanout: %+v edge: %+v", rep, c)
}

// nominalGPUSecondsPerBuild prices one chunk enhancement (one anchor at
// the test fraction) at the modeled 40ms inference latency used across
// the repo's benchmarks, so GPU-seconds are comparable machine to
// machine.
const nominalGPUSecondsPerBuild = 0.040

// BenchmarkEdgeFanout is the PR 9 acceptance benchmark: a Zipf(1.0)
// 64-stream catalog with a 64-viewers-per-stream population (4096
// viewers), cached edge vs no-cache pass-through. One b.N iteration is
// one full fanout run; use -benchtime 1x. Reported metrics:
// egress chunks/s, hit rate, and GPU-seconds per delivered chunk
// (enhancer pool calls x the nominal per-build cost).
func BenchmarkEdgeFanout(b *testing.B) {
	const (
		streams         = 64
		viewersPer      = 64
		chunksPer       = 2
		cachedBudget    = int64(4096) // ~1 fetch per viewer
		passBudget      = int64(192)  // every delivery is a fresh build; keep wall time sane
	)
	catalog := make([]uint32, streams)
	for i := range catalog {
		catalog[i] = uint32(100 + i)
	}

	run := func(b *testing.B, passThrough bool, budget int64) {
		// Pass-through pairs with a non-retaining origin: every fetch
		// re-enhances, which is exactly the no-edge-cache cost model.
		origin := startFanoutOrigin(b, media.ServerConfig{
			LazyEnhancement: true, LazyNoRetain: passThrough,
		}, catalog, chunksPer)
		e := startFanoutEdge(b, origin, edge.Config{PassThrough: passThrough})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := RunFanout(FanoutConfig{
				EdgeAddr:        e.Addr(),
				Streams:         catalog,
				ChunksPerStream: chunksPer,
				Viewers:         streams * viewersPer,
				ZipfExponent:    1.0,
				Seed:            7,
				MaxDeliveries:   budget,
				FetchTimeout:    60 * time.Second,
			})
			if err != nil {
				b.Fatal(err)
			}
			if rep.Errors > 0 {
				b.Fatalf("fanout errors: %+v", rep)
			}
			gpuSec := float64(origin.pool.Counters().Calls) * nominalGPUSecondsPerBuild
			b.ReportMetric(rep.EgressChunksPerSec, "chunks/s")
			b.ReportMetric(e.Counters().AmortizedRate(), "hit-rate")
			b.ReportMetric(gpuSec/float64(rep.Delivered), "gpu-sec/chunk")
		}
	}

	b.Run("cached", func(b *testing.B) { run(b, false, cachedBudget) })
	b.Run("passthrough", func(b *testing.B) { run(b, true, passBudget) })
}
