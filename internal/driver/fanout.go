package driver

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/neuroscaler/neuroscaler/internal/edge"
)

// This file is the delivery-tier load generator: it models a viewer
// population whose stream choices follow a Zipf popularity law (a few
// streams soak up most viewers — the regime where NeuroScaler's
// enhance-once amortization pays) and drives an edge with concurrent
// pulls, subscriptions, and an optional flash crowd. The report feeds
// the fanout benchmarks: aggregate egress, cache hit rate, and
// enhancer work per delivered chunk.

// FlashCrowd schedules a mid-run popularity spike: when the first
// puller of Stream reaches chunk AtChunk, ExtraViewers new pullers
// pile onto that stream. This exercises the single-flight path under
// the worst case the paper cares about — many viewers arriving at the
// same cold chunk at once.
type FlashCrowd struct {
	Stream       uint32
	AtChunk      uint32
	ExtraViewers int
}

// FanoutConfig describes one load-generation run against an edge.
type FanoutConfig struct {
	// EdgeAddr is the edge's viewer-facing listen address.
	EdgeAddr string
	// Streams is the catalog viewers choose from; index 0 is the most
	// popular rank.
	Streams []uint32
	// ChunksPerStream bounds each puller's sequence walk.
	ChunksPerStream int
	// Viewers is the initial viewer population (before any flash crowd).
	Viewers int
	// ZipfExponent shapes popularity: weight(rank r) = 1/r^s. Zero
	// defaults to 1.0, the canonical live-stream skew.
	ZipfExponent float64
	// SubscribeFraction is the share of viewers that subscribe for
	// pushed chunks instead of pulling; at least one viewer always
	// pulls so the catalog advances.
	SubscribeFraction float64
	// Seed fixes viewer/stream assignment for reproducible runs.
	Seed int64
	// MaxDeliveries, when positive, caps total fetch attempts across
	// all pullers (they loop the catalog until the budget drains).
	// Zero means one pass over each puller's stream.
	MaxDeliveries int64
	// FetchTimeout is the per-request budget stamped on viewer fetches.
	FetchTimeout time.Duration
	// Flash, when non-nil, schedules a flash crowd.
	Flash *FlashCrowd
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// FanoutReport aggregates one run's delivery totals.
type FanoutReport struct {
	// Delivered counts successful fetch replies across all pullers.
	Delivered int64
	// Pushes counts chunks delivered to subscribers via fanout.
	Pushes int64
	// Errors counts failed dials and fetch errors.
	Errors int64
	// FlashViewers is how many flash-crowd pullers actually launched.
	FlashViewers int64
	// Elapsed is wall time from first dial to last viewer exit.
	Elapsed time.Duration
	// EgressChunksPerSec is (Delivered+Pushes)/Elapsed — the delivery
	// tier's aggregate output rate.
	EgressChunksPerSec float64
}

// zipfPicker samples catalog ranks with probability proportional to
// 1/rank^exp. Unlike math/rand's Zipf it accepts exponents <= 1, which
// the acceptance workload (Zipf 1.0) needs.
type zipfPicker struct {
	cum []float64
}

func newZipfPicker(n int, exp float64) *zipfPicker {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), exp)
		cum[i] = total
	}
	return &zipfPicker{cum: cum}
}

func (z *zipfPicker) pick(r *rand.Rand) int {
	x := r.Float64() * z.cum[len(z.cum)-1]
	i := sort.SearchFloat64s(z.cum, x)
	if i >= len(z.cum) {
		i = len(z.cum) - 1
	}
	return i
}

type fanoutRun struct {
	cfg       FanoutConfig
	delivered atomic.Int64
	pushes    atomic.Int64
	errs      atomic.Int64
	flashN    atomic.Int64
	// budget holds remaining deliveries when MaxDeliveries > 0.
	budget    atomic.Int64
	capped    bool
	stop      chan struct{}
	stopOnce  sync.Once
	flashOnce sync.Once
	pullers   sync.WaitGroup
	subs      sync.WaitGroup
}

// claim reserves one delivery from the global budget; when the budget
// drains it signals every viewer to wind down.
func (r *fanoutRun) claim() bool {
	if !r.capped {
		select {
		case <-r.stop:
			return false
		default:
			return true
		}
	}
	if r.budget.Add(-1) < 0 {
		r.stopOnce.Do(func() { close(r.stop) })
		return false
	}
	return true
}

// RunFanout drives the configured viewer population against the edge
// and blocks until every viewer exits.
func RunFanout(cfg FanoutConfig) (FanoutReport, error) {
	if cfg.EdgeAddr == "" {
		return FanoutReport{}, errors.New("driver: fanout needs an edge address")
	}
	if len(cfg.Streams) == 0 || cfg.ChunksPerStream <= 0 || cfg.Viewers <= 0 {
		return FanoutReport{}, fmt.Errorf("driver: fanout needs streams/chunks/viewers, got %d/%d/%d",
			len(cfg.Streams), cfg.ChunksPerStream, cfg.Viewers)
	}
	if cfg.ZipfExponent == 0 {
		cfg.ZipfExponent = 1.0
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = edge.DefaultFetchBudget
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}

	r := &fanoutRun{cfg: cfg, capped: cfg.MaxDeliveries > 0, stop: make(chan struct{})}
	r.budget.Store(cfg.MaxDeliveries)

	// Assign streams up front from one seeded source so the workload is
	// reproducible regardless of goroutine interleaving.
	picker := newZipfPicker(len(cfg.Streams), cfg.ZipfExponent)
	rng := rand.New(rand.NewSource(cfg.Seed))
	nSubs := int(cfg.SubscribeFraction * float64(cfg.Viewers))
	if nSubs >= cfg.Viewers {
		nSubs = cfg.Viewers - 1
	}
	start := time.Now()
	for i := 0; i < cfg.Viewers; i++ {
		stream := cfg.Streams[picker.pick(rng)]
		if i < nSubs {
			r.subs.Add(1)
			go r.subscriber(stream)
		} else {
			r.pullers.Add(1)
			go r.puller(stream)
		}
	}
	cfg.Logf("driver: fanout launched %d pullers + %d subscribers over %d streams",
		cfg.Viewers-nSubs, nSubs, len(cfg.Streams))

	// Pullers drive the run; once they drain, subscribers have nothing
	// left to receive.
	r.pullers.Wait()
	r.stopOnce.Do(func() { close(r.stop) })
	r.subs.Wait()
	elapsed := time.Since(start)

	rep := FanoutReport{
		Delivered:    r.delivered.Load(),
		Pushes:       r.pushes.Load(),
		Errors:       r.errs.Load(),
		FlashViewers: r.flashN.Load(),
		Elapsed:      elapsed,
	}
	if s := elapsed.Seconds(); s > 0 {
		rep.EgressChunksPerSec = float64(rep.Delivered+rep.Pushes) / s
	}
	return rep, nil
}

// puller walks its stream's chunk sequence, re-looping while a global
// delivery budget remains.
func (r *fanoutRun) puller(stream uint32) {
	defer r.pullers.Done()
	c, err := edge.Dial(r.cfg.EdgeAddr, r.cfg.FetchTimeout)
	if err != nil {
		r.errs.Add(1)
		return
	}
	defer c.Close()
	for {
		for seq := 0; seq < r.cfg.ChunksPerStream; seq++ {
			if !r.claim() {
				return
			}
			if _, err := c.FetchChunk(stream, uint32(seq), 0); err != nil {
				r.errs.Add(1)
			} else {
				r.delivered.Add(1)
			}
			if f := r.cfg.Flash; f != nil && stream == f.Stream && uint32(seq) == f.AtChunk {
				r.flashOnce.Do(func() { r.launchFlashCrowd(f) })
			}
		}
		if !r.capped {
			return // single pass when no delivery budget is set
		}
	}
}

// launchFlashCrowd spawns the extra pullers. Called from inside a
// running puller, so the puller WaitGroup counter is necessarily
// nonzero and Add here cannot race Wait from zero.
func (r *fanoutRun) launchFlashCrowd(f *FlashCrowd) {
	r.cfg.Logf("driver: flash crowd: +%d viewers on stream %d at chunk %d",
		f.ExtraViewers, f.Stream, f.AtChunk)
	for i := 0; i < f.ExtraViewers; i++ {
		r.flashN.Add(1)
		r.pullers.Add(1)
		go r.puller(f.Stream)
	}
}

// subscriber rides fanout pushes populated by other viewers' pulls.
func (r *fanoutRun) subscriber(stream uint32) {
	defer r.subs.Done()
	c, err := edge.Dial(r.cfg.EdgeAddr, r.cfg.FetchTimeout)
	if err != nil {
		r.errs.Add(1)
		return
	}
	defer c.Close()
	if err := c.Subscribe(stream, 0, 0); err != nil {
		r.errs.Add(1)
		return
	}
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		p, err := c.NextPush(100 * time.Millisecond)
		if err != nil {
			if errors.Is(err, edge.ErrNoPush) {
				continue
			}
			r.errs.Add(1)
			return
		}
		_ = p
		r.pushes.Add(1)
	}
}
