// Package driver wires the full Figure 7 workflow in one process: per
// scheduling interval it gathers each stream's decoded codec metadata,
// runs the global anchor-aware scheduler (§5.2), dispatches the selected
// anchor frames to per-instance enhancers (§6), and assembles the
// enhanced outputs into per-stream hybrid containers (§6.1). It is the
// glue the media server uses when operating a multi-GPU cluster rather
// than a single enhancer.
package driver

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/neuroscaler/neuroscaler/internal/anchor"
	"github.com/neuroscaler/neuroscaler/internal/cluster"
	"github.com/neuroscaler/neuroscaler/internal/enhance"
	"github.com/neuroscaler/neuroscaler/internal/hybrid"
	"github.com/neuroscaler/neuroscaler/internal/sched"
	"github.com/neuroscaler/neuroscaler/internal/sr"
	"github.com/neuroscaler/neuroscaler/internal/vcodec"
)

// Stream is one live stream the driver manages.
type Stream struct {
	ID     int
	Config vcodec.Config
	Scale  int
	Model  sr.Model

	decoder *vcodec.Decoder
	qp      int
}

// NewStream prepares driver state for one ingest stream.
func NewStream(id int, cfg vcodec.Config, scale int, model sr.Model, anchorFraction float64) (*Stream, error) {
	if model == nil {
		return nil, errors.New("driver: nil model")
	}
	dec, err := vcodec.NewDecoder(cfg.Width, cfg.Height)
	if err != nil {
		return nil, err
	}
	qp, err := hybrid.QPForFraction(anchorFraction)
	if err != nil {
		return nil, err
	}
	return &Stream{ID: id, Config: cfg, Scale: scale, Model: model, decoder: dec, qp: qp}, nil
}

// Driver runs scheduling intervals across a set of enhancer instances.
type Driver struct {
	scheduler *sched.Scheduler
	enhancers []*enhance.Enhancer
}

// New builds a driver over the given enhancer instances. The scheduler
// operates at the cost-effective knee: anchors are capped at the
// NeuroScaler fraction in addition to the real-time budget.
func New(policy sched.Policy, enhancers []*enhance.Enhancer) (*Driver, error) {
	if len(enhancers) == 0 {
		return nil, errors.New("driver: need at least one enhancer")
	}
	s, err := sched.New(policy, len(enhancers))
	if err != nil {
		return nil, err
	}
	s.MaxAnchorFraction = cluster.NeuroScalerAnchorFraction
	return &Driver{scheduler: s, enhancers: enhancers}, nil
}

// IntervalInput is one stream's packets for the current interval.
type IntervalInput struct {
	Stream  *Stream
	Packets [][]byte
}

// StreamOutput is one stream's result for the interval.
type StreamOutput struct {
	StreamID int
	// Container holds the interval's hybrid-packaged frames.
	Container *hybrid.Container
	// Anchors is the number of anchors this stream received.
	Anchors int
}

// IntervalReport summarizes one scheduling round.
type IntervalReport struct {
	Outputs []StreamOutput
	// LoadPerInstance is the virtual GPU time consumed per enhancer.
	LoadPerInstance []time.Duration
	// Scheduled is the total number of anchors assigned.
	Scheduled int
}

// RunInterval decodes each stream's packets, schedules anchors globally,
// enhances them on the per-instance enhancers (concurrently, one
// goroutine per instance), and returns the packaged outputs.
func (d *Driver) RunInterval(ctx context.Context, inputs []IntervalInput) (*IntervalReport, error) {
	type decodedStream struct {
		in      IntervalInput
		decoded []*vcodec.Decoded
	}
	streams := make(map[int]*decodedStream, len(inputs))
	intervals := make([]sched.StreamInterval, 0, len(inputs))
	for _, in := range inputs {
		if in.Stream == nil {
			return nil, errors.New("driver: nil stream in input")
		}
		ds := &decodedStream{in: in}
		infos := make([]vcodec.Info, len(in.Packets))
		in.Stream.decoder.CaptureResidual = true
		for i, pkt := range in.Packets {
			dec, err := in.Stream.decoder.Decode(pkt)
			if err != nil {
				return nil, fmt.Errorf("driver: stream %d packet %d: %w", in.Stream.ID, i, err)
			}
			ds.decoded = append(ds.decoded, dec)
			infos[i] = dec.Info
		}
		if _, dup := streams[in.Stream.ID]; dup {
			return nil, fmt.Errorf("driver: duplicate stream %d", in.Stream.ID)
		}
		streams[in.Stream.ID] = ds
		intervals = append(intervals, sched.StreamInterval{
			StreamID: in.Stream.ID,
			Metas:    anchor.MetasFromInfos(infos),
			AnchorLatency: cluster.InferLatency(in.Stream.Model.Config(),
				in.Stream.Config.Width, in.Stream.Config.Height),
		})
	}

	plan, err := d.scheduler.Schedule(intervals)
	if err != nil {
		return nil, err
	}

	// Group assignments per instance and dispatch concurrently. The
	// modeled batch latency is registered as in-flight with the scheduler
	// for the duration of the dispatch, so a concurrent scheduling round
	// (overlapped intervals) sees only each instance's residual budget.
	jobsPerInstance := make([][]enhance.Job, len(d.enhancers))
	dispatchLoad := make([]time.Duration, len(d.enhancers))
	for _, a := range plan.Assignments {
		ds := streams[a.StreamID]
		jobsPerInstance[a.Instance] = append(jobsPerInstance[a.Instance], enhance.Job{
			StreamID: a.StreamID,
			Packet:   a.Packet,
			Model:    ds.in.Stream.Model,
			Decoded:  ds.decoded[a.Packet],
			QP:       ds.in.Stream.qp,
		})
		dispatchLoad[a.Instance] += a.Latency
	}
	type instanceResult struct {
		results []enhance.Result
		err     error
	}
	resCh := make([]instanceResult, len(d.enhancers))
	var wg sync.WaitGroup
	for i, jobs := range jobsPerInstance {
		if len(jobs) == 0 {
			continue
		}
		wg.Add(1)
		_ = d.scheduler.NoteDispatch(i, dispatchLoad[i])
		go func(i int, jobs []enhance.Job) {
			defer wg.Done()
			defer d.scheduler.NoteComplete(i, dispatchLoad[i])
			results, err := d.enhancers[i].EnhanceBatch(ctx, jobs)
			resCh[i] = instanceResult{results: results, err: err}
		}(i, jobs)
	}
	wg.Wait()

	// Assemble per-stream containers.
	anchorsByStream := make(map[int]map[int][]byte)
	report := &IntervalReport{LoadPerInstance: make([]time.Duration, len(d.enhancers))}
	for i, ir := range resCh {
		if ir.err != nil {
			return nil, fmt.Errorf("driver: instance %d: %w", i, ir.err)
		}
		for _, r := range ir.results {
			if r.Err != nil {
				return nil, fmt.Errorf("driver: stream %d packet %d: %w", r.StreamID, r.Packet, r.Err)
			}
			if anchorsByStream[r.StreamID] == nil {
				anchorsByStream[r.StreamID] = make(map[int][]byte)
			}
			anchorsByStream[r.StreamID][r.Packet] = r.Encoded
			report.LoadPerInstance[i] += r.InferLatency
			report.Scheduled++
		}
	}
	for _, in := range inputs {
		container := &hybrid.Container{
			Config: in.Stream.Config,
			Scale:  in.Stream.Scale,
			Frames: make([]hybrid.ContainerFrame, len(in.Packets)),
		}
		for i, pkt := range in.Packets {
			container.Frames[i] = hybrid.ContainerFrame{VideoPacket: pkt}
			if enc, ok := anchorsByStream[in.Stream.ID][i]; ok {
				container.Frames[i].Anchor = enc
			}
		}
		report.Outputs = append(report.Outputs, StreamOutput{
			StreamID:  in.Stream.ID,
			Container: container,
			Anchors:   len(anchorsByStream[in.Stream.ID]),
		})
	}
	return report, nil
}
