package sr

import (
	"fmt"

	"github.com/neuroscaler/neuroscaler/internal/frame"
	"github.com/neuroscaler/neuroscaler/internal/vcodec"
)

// EnhanceStream decodes an ingest stream and runs selective
// super-resolution over it. anchorPackets holds the packet indices
// (positions in s.Packets) to enhance with the model; all other frames
// take the reuse path. It returns the high-resolution output for every
// visible frame in display order.
func EnhanceStream(s *vcodec.Stream, model Model, anchorPackets map[int]bool) ([]*frame.Frame, error) {
	dec, err := vcodec.NewDecoderFor(s)
	if err != nil {
		return nil, err
	}
	dec.CaptureResidual = true
	rec, err := NewReconstructor(model, s.Config)
	if err != nil {
		return nil, err
	}
	var out []*frame.Frame
	for i, pkt := range s.Packets {
		d, err := dec.Decode(pkt.Data)
		if err != nil {
			return nil, fmt.Errorf("sr: packet %d: %w", i, err)
		}
		hr, err := rec.Process(d, anchorPackets[i])
		if err != nil {
			return nil, fmt.Errorf("sr: packet %d: %w", i, err)
		}
		if hr != nil {
			out = append(out, hr)
		}
	}
	return out, nil
}

// AllVisibleAnchors returns the anchor set of the per-frame baseline:
// every visible packet is enhanced.
func AllVisibleAnchors(s *vcodec.Stream) map[int]bool {
	set := make(map[int]bool, len(s.Packets))
	for i, p := range s.Packets {
		if p.Info.Visible {
			set[i] = true
		}
	}
	return set
}
