package sr

import (
	"bytes"
	"testing"

	"github.com/neuroscaler/neuroscaler/internal/par"
)

// TestReconstructionDeterministicAcrossWorkers runs selective SR — anchor
// inference, warped reuse, residual upsampling — under several worker
// counts and requires bit-identical output frames, pinning down the
// parallel kernels' disjoint-write and ordered-reduction contract across
// the whole enhancement path.
func TestReconstructionDeterministicAcrossWorkers(t *testing.T) {
	hr, stream := testStream(t, "lol", 24)
	model, err := NewOracleModel(HighQuality(), hr)
	if err != nil {
		t.Fatal(err)
	}
	anchors := map[int]bool{0: true, 9: true, 18: true}

	oldWorkers := par.Workers()
	defer par.SetWorkers(oldWorkers)

	run := func(workers int) [][]byte {
		par.SetWorkers(workers)
		out, err := EnhanceStream(stream, model, anchors)
		if err != nil {
			t.Fatal(err)
		}
		planes := make([][]byte, 0, len(out)*3)
		for _, f := range out {
			planes = append(planes,
				append([]byte(nil), f.Y.Pix...),
				append([]byte(nil), f.U.Pix...),
				append([]byte(nil), f.V.Pix...))
		}
		return planes
	}

	base := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d planes, want %d", workers, len(got), len(base))
		}
		for i := range base {
			if !bytes.Equal(got[i], base[i]) {
				t.Fatalf("workers=%d: plane %d differs from serial reconstruction", workers, i)
			}
		}
	}
}
