// Package sr implements the super-resolution stage: the content-aware SR
// model abstraction (the role of the NAS "high-quality" DNN served by
// TensorRT in the paper) and the selective super-resolution reconstructor
// that upscales non-anchor frames by reusing previously super-resolved
// frames guided by codec information (NEMO-style, §2 of the paper).
//
// The model's pixel behaviour is simulated (see DESIGN.md): a content-aware
// DNN trained online on the stream's high-resolution source is modelled as
// a reconstruction that moves the bicubic upscale toward the ground-truth
// frame by a fidelity factor derived from the network size, plus a small
// fixed imperfection floor. Everything downstream of the model — error
// accumulation across non-anchor frames, its reset at anchors, the
// dependence of anchor gain on frame type and residual — is real pixel
// math, not a formula.
package sr

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/neuroscaler/neuroscaler/internal/frame"
	"github.com/neuroscaler/neuroscaler/internal/par"
	"github.com/neuroscaler/neuroscaler/internal/vcodec"
)

// ModelConfig describes a NAS-style SR network.
type ModelConfig struct {
	// Blocks is the number of residual blocks (paper default 8).
	Blocks int
	// Channels is the channel width (paper's high-quality DNN uses 32).
	Channels int
	// Scale is the integer upscale factor (paper uses 3: 720p -> 2160p).
	Scale int
}

// Validate checks the configuration.
func (c ModelConfig) Validate() error {
	if c.Blocks < 1 || c.Blocks > 64 {
		return fmt.Errorf("sr: blocks %d out of [1, 64]", c.Blocks)
	}
	if c.Channels < 1 || c.Channels > 256 {
		return fmt.Errorf("sr: channels %d out of [1, 256]", c.Channels)
	}
	if c.Scale < 2 || c.Scale > 4 {
		return fmt.Errorf("sr: scale %d out of [2, 4]", c.Scale)
	}
	return nil
}

// HighQuality is the paper's default DNN configuration.
func HighQuality() ModelConfig { return ModelConfig{Blocks: 8, Channels: 32, Scale: 3} }

// Fidelity returns the fraction of the upscaling error the model removes,
// in [0, 1). It grows with network capacity (blocks × channels) with
// diminishing returns, calibrated so the (8, 32) network yields the
// ~4-5 dB anchor-frame gains of the paper and the smaller per-frame
// baselines of Table 3 land proportionally lower.
func (c ModelConfig) Fidelity() float64 {
	capacity := float64(c.Blocks * c.Channels)
	return capacity / (capacity + 280)
}

// WeightBytes returns the parameter size of the network, used by the GPU
// memory manager. Parameters scale with blocks·channels² (3×3 convs).
func (c ModelConfig) WeightBytes() int64 {
	return int64(c.Blocks) * int64(c.Channels) * int64(c.Channels) * 9 * 4
}

// Model super-resolves single frames. Implementations must be safe for
// sequential use by one goroutine; the enhancer serializes per-stream.
type Model interface {
	Config() ModelConfig
	// Apply upscales a decoded ingest-resolution frame. displayIndex
	// identifies the frame within the stream so content-aware models can
	// exploit what they learned about the content.
	Apply(lr *frame.Frame, displayIndex int) (*frame.Frame, error)
}

// OracleModel simulates a content-aware DNN trained online (as in
// LiveNAS): its "weights" are the high-resolution source frames the
// trainer saw, and applying it blends the bicubic upscale toward that
// source by the configured fidelity, then adds a deterministic
// imperfection floor so the output is never the ground truth.
type OracleModel struct {
	cfg      ModelConfig
	fidelity float64
	hr       []*frame.Frame
	// floorAmp is the RMS amplitude (luma levels) of the imperfection
	// floor; it bounds the achievable quality the way a real DNN's
	// capacity does.
	floorAmp float64
	seed     int64
	// targeted, when non-nil, marks display indices the training
	// emphasized (anchor-targeted training, §9): fidelity is boosted on
	// those frames and slightly reduced elsewhere, reflecting a fixed
	// training budget.
	targeted map[int]bool
}

// NewOracleModel builds a model for one stream. hr holds the stream's
// high-resolution frames in display order (the "training data"). The
// model retains the slice; callers must not mutate the frames.
func NewOracleModel(cfg ModelConfig, hr []*frame.Frame) (*OracleModel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(hr) == 0 {
		return nil, errors.New("sr: oracle model needs at least one HR frame")
	}
	return &OracleModel{
		cfg:      cfg,
		fidelity: cfg.Fidelity(),
		hr:       hr,
		floorAmp: 1.6,
		seed:     int64(cfg.Blocks)<<32 ^ int64(cfg.Channels),
	}, nil
}

// NewOracleModelTargeted builds an anchor-targeted model (the §9 joint
// optimization): training time concentrates on the frames at the given
// display indices, boosting fidelity there at a small cost everywhere
// else — the training budget is fixed.
func NewOracleModelTargeted(cfg ModelConfig, hr []*frame.Frame, targets []int) (*OracleModel, error) {
	m, err := NewOracleModel(cfg, hr)
	if err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		return nil, errors.New("sr: targeted training needs at least one target frame")
	}
	m.targeted = make(map[int]bool, len(targets))
	for _, t := range targets {
		if t < 0 || t >= len(hr) {
			return nil, fmt.Errorf("sr: target %d outside trained range [0, %d)", t, len(hr))
		}
		m.targeted[t] = true
	}
	return m, nil
}

// Config implements Model.
func (m *OracleModel) Config() ModelConfig { return m.cfg }

// fidelityFor returns the per-frame fidelity, accounting for targeted
// training.
func (m *OracleModel) fidelityFor(displayIndex int) float64 {
	if m.targeted == nil {
		return m.fidelity
	}
	if m.targeted[displayIndex] {
		// Concentrated training closes ~35% of the remaining gap.
		return m.fidelity + (1-m.fidelity)*0.35
	}
	f := m.fidelity - 0.04 // the rest of the content sees less training
	if f < 0 {
		f = 0
	}
	return f
}

// Apply implements Model.
func (m *OracleModel) Apply(lr *frame.Frame, displayIndex int) (*frame.Frame, error) {
	if displayIndex < 0 || displayIndex >= len(m.hr) {
		return nil, fmt.Errorf("sr: display index %d outside trained range [0, %d)", displayIndex, len(m.hr))
	}
	gt := m.hr[displayIndex]
	out, err := frame.ScaleBicubic(lr, gt.W, gt.H)
	if err != nil {
		return nil, err
	}
	if err := frame.Blend(out, gt, m.fidelityFor(displayIndex)); err != nil {
		return nil, err
	}
	m.addFloor(out, displayIndex)
	return out, nil
}

// addFloor perturbs the output with deterministic noise of amplitude
// floorAmp, independent of the input error.
func (m *OracleModel) addFloor(f *frame.Frame, displayIndex int) {
	if m.floorAmp <= 0 {
		return
	}
	rng := rand.New(rand.NewSource(m.seed + int64(displayIndex)*7919))
	amp := m.floorAmp * math.Sqrt(3) // uniform [-a, a] has RMS a/sqrt(3)
	for y := 0; y < f.H; y++ {
		row := f.Y.Row(y)
		for x := 0; x < f.W; x += 2 {
			v := int(row[x]) + int(rng.Float64()*2*amp-amp)
			if v < 0 {
				v = 0
			} else if v > 255 {
				v = 255
			}
			row[x] = byte(v)
		}
	}
}

// BicubicModel is the no-enhancement baseline: plain bicubic upscaling.
// It is what "Original" quality is measured against in the figures.
type BicubicModel struct {
	cfg ModelConfig
}

// NewBicubicModel returns a bicubic upscaler with the given scale factor.
func NewBicubicModel(scale int) (*BicubicModel, error) {
	cfg := ModelConfig{Blocks: 1, Channels: 1, Scale: scale}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &BicubicModel{cfg: cfg}, nil
}

// Config implements Model.
func (m *BicubicModel) Config() ModelConfig { return m.cfg }

// Apply implements Model.
func (m *BicubicModel) Apply(lr *frame.Frame, _ int) (*frame.Frame, error) {
	return frame.ScaleBicubic(lr, lr.W*m.cfg.Scale, lr.H*m.cfg.Scale)
}

var _ Model = (*OracleModel)(nil)
var _ Model = (*BicubicModel)(nil)

// Reconstructor performs selective super-resolution over a decoded
// stream: anchor frames run the model; non-anchor frames are rebuilt by
// warping the cached super-resolved references with the codec's motion
// vectors and adding the bilinearly upscaled residual. Quality loss
// accumulates across consecutive non-anchor frames and resets at anchors,
// exactly the dynamics anchor selection exploits.
type Reconstructor struct {
	model    Model
	scale    int
	lrW, lrH int
	grid     frame.BlockGrid // ingest-resolution motion grid

	srLast   *frame.Frame
	srAltref *frame.Frame
	// ownLast/ownAltref record whether the matching reference frame was
	// allocated by this reconstructor (as opposed to provided by the
	// caller via ProcessProvided); only owned frames may be recycled into
	// the frame arena when superseded.
	ownLast   bool
	ownAltref bool

	anchors int
	frames  int
}

// NewReconstructor builds a reconstructor for streams of the given ingest
// configuration. A nil model is allowed when anchors are supplied
// externally via ProcessProvided (the hybrid decoder's client-side path);
// use NewProvidedReconstructor for that.
func NewReconstructor(model Model, streamCfg vcodec.Config) (*Reconstructor, error) {
	if model == nil {
		return nil, errors.New("sr: nil model (use NewProvidedReconstructor for model-free decoding)")
	}
	scale := model.Config().Scale
	return &Reconstructor{
		model: model,
		scale: scale,
		lrW:   streamCfg.Width,
		lrH:   streamCfg.Height,
		grid: frame.BlockGrid{
			FrameW: streamCfg.Width,
			FrameH: streamCfg.Height,
			Block:  vcodec.MEBlock,
		},
	}, nil
}

// NewProvidedReconstructor builds a model-free reconstructor whose anchor
// frames arrive pre-upscaled (decoded from a hybrid container). Only
// ProcessProvided and the reuse path may run on it.
func NewProvidedReconstructor(scale int, streamCfg vcodec.Config) (*Reconstructor, error) {
	if scale < 2 || scale > 4 {
		return nil, fmt.Errorf("sr: scale %d out of [2, 4]", scale)
	}
	return &Reconstructor{
		scale: scale,
		lrW:   streamCfg.Width,
		lrH:   streamCfg.Height,
		grid: frame.BlockGrid{
			FrameW: streamCfg.Width,
			FrameH: streamCfg.Height,
			Block:  vcodec.MEBlock,
		},
	}, nil
}

// ProcessProvided consumes one decoded packet whose high-resolution
// anchor output (if hr is non-nil) was produced elsewhere. With hr nil
// the packet takes the ordinary reuse path.
func (r *Reconstructor) ProcessProvided(d *vcodec.Decoded, hr *frame.Frame) (*frame.Frame, error) {
	if hr == nil {
		return r.Process(d, false)
	}
	if hr.W != r.lrW*r.scale || hr.H != r.lrH*r.scale {
		return nil, fmt.Errorf("sr: provided anchor is %dx%d, want %dx%d",
			hr.W, hr.H, r.lrW*r.scale, r.lrH*r.scale)
	}
	r.frames++
	r.anchors++
	switch d.Info.Type {
	case vcodec.Key:
		r.setLast(hr, false) // caller-provided: never recycled
		r.setAltref(hr.Clone(), true)
	case vcodec.AltRef:
		r.setAltref(hr, false)
		return nil, nil
	default:
		r.setLast(hr, false)
	}
	return hr.Clone(), nil
}

// setLast replaces the LAST reference slot, recycling the superseded
// frame into the arena when this reconstructor owns it. own records
// whether the new frame may be recycled in turn.
func (r *Reconstructor) setLast(f *frame.Frame, own bool) {
	if r.ownLast {
		frame.Release(r.srLast)
	}
	r.srLast, r.ownLast = f, own
}

// setAltref is setLast for the ALTREF slot.
func (r *Reconstructor) setAltref(f *frame.Frame, own bool) {
	if r.ownAltref {
		frame.Release(r.srAltref)
	}
	r.srAltref, r.ownAltref = f, own
}

// AnchorCount returns how many anchor frames have been enhanced.
func (r *Reconstructor) AnchorCount() int { return r.anchors }

// FrameCount returns how many packets have been processed.
func (r *Reconstructor) FrameCount() int { return r.frames }

// Process consumes one decoded packet. anchor selects the expensive
// model path. The returned frame is the high-resolution output; it is nil
// for invisible (altref) packets, whose result only updates reference
// state. Decoded inter packets must carry a captured residual.
func (r *Reconstructor) Process(d *vcodec.Decoded, anchor bool) (*frame.Frame, error) {
	if d.Frame.W != r.lrW || d.Frame.H != r.lrH {
		return nil, fmt.Errorf("sr: frame is %dx%d, reconstructor expects %dx%d",
			d.Frame.W, d.Frame.H, r.lrW, r.lrH)
	}
	r.frames++
	var hr *frame.Frame
	var err error
	switch {
	case anchor:
		if r.model == nil {
			return nil, errors.New("sr: anchor requested on a model-free reconstructor")
		}
		r.anchors++
		hr, err = r.model.Apply(d.Frame, d.Info.DisplayIndex)
		if err != nil {
			return nil, err
		}
	case d.Info.Type == vcodec.Key:
		// Non-anchor key frame: no motion data exists, fall back to the
		// cheap client-side upscale.
		hr, err = frame.ScaleBilinear(d.Frame, r.lrW*r.scale, r.lrH*r.scale)
		if err != nil {
			return nil, err
		}
	default:
		hr, err = r.reuse(d)
		if err != nil {
			return nil, err
		}
	}

	switch d.Info.Type {
	case vcodec.Key:
		r.setLast(hr, true)
		r.setAltref(hr.Clone(), true)
	case vcodec.AltRef:
		r.setAltref(hr, true)
		return nil, nil // invisible: reference update only
	default:
		r.setLast(hr, true)
	}
	return hr.Clone(), nil
}

// reuse rebuilds a non-anchor inter/altref frame from the cached
// super-resolved references.
func (r *Reconstructor) reuse(d *vcodec.Decoded) (*frame.Frame, error) {
	if r.srLast == nil {
		return nil, errors.New("sr: inter frame before any reconstructed reference")
	}
	if d.Residual == nil {
		return nil, errors.New("sr: decoded packet lacks captured residual (set Decoder.CaptureResidual)")
	}
	if len(d.Info.MVs) != r.grid.NumBlocks() {
		return nil, fmt.Errorf("sr: %d motion vectors for %d blocks", len(d.Info.MVs), r.grid.NumBlocks())
	}
	hrW, hrH := r.lrW*r.scale, r.lrH*r.scale
	// The warp writes every sample (the grid tiles the frame and the
	// block edge is even, so chroma rectangles are disjoint and complete),
	// making a dirty arena frame safe; blocks warp concurrently banded by
	// whole block rows.
	out := frame.Borrow(hrW, hrH)
	hrGrid := frame.BlockGrid{FrameW: hrW, FrameH: hrH, Block: vcodec.MEBlock * r.scale}
	cols := hrGrid.Cols()
	par.For(hrGrid.Rows(), 1, func(rLo, rHi int) {
		for i := rLo * cols; i < rHi*cols; i++ {
			ref := r.srLast
			if d.Info.Refs[i] == vcodec.RefAltRef && r.srAltref != nil {
				ref = r.srAltref
			}
			x0, y0, w, h := hrGrid.BlockRect(i)
			warpBlockPlanes(out, ref, x0, y0, w, h, d.Info.MVs[i].Scaled(r.scale))
		}
	})
	resHR := frame.Borrow(hrW, hrH)
	frame.ScaleBilinearInto(resHR, d.Residual)
	err := frame.AddResidual(out, resHR)
	frame.Release(resHR)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// warpBlockPlanes copies one motion-compensated block (luma + chroma)
// from ref into dst with border clamping.
func warpBlockPlanes(dst, ref *frame.Frame, x0, y0, w, h int, mv frame.MotionVector) {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dst.Y.Set(x0+x, y0+y, ref.Y.At(x0+x+mv.DX, y0+y+mv.DY))
		}
	}
	cx0, cy0, cw, ch := x0/2, y0/2, (w+1)/2, (h+1)/2
	for y := 0; y < ch; y++ {
		for x := 0; x < cw; x++ {
			dst.U.Set(cx0+x, cy0+y, ref.U.At(cx0+x+mv.DX/2, cy0+y+mv.DY/2))
			dst.V.Set(cx0+x, cy0+y, ref.V.At(cx0+x+mv.DX/2, cy0+y+mv.DY/2))
		}
	}
}
