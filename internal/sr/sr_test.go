package sr

import (
	"testing"

	"github.com/neuroscaler/neuroscaler/internal/frame"
	"github.com/neuroscaler/neuroscaler/internal/metrics"
	"github.com/neuroscaler/neuroscaler/internal/synth"
	"github.com/neuroscaler/neuroscaler/internal/vcodec"
)

// testStream generates HR ground truth, downscales to the ingest
// resolution, and encodes.
func testStream(t *testing.T, content string, n int) (hr []*frame.Frame, stream *vcodec.Stream) {
	t.Helper()
	p, err := synth.ProfileByName(content)
	if err != nil {
		t.Fatal(err)
	}
	const scale = 3
	g, err := synth.NewGenerator(p, 144*scale, 96*scale, 21)
	if err != nil {
		t.Fatal(err)
	}
	hr = g.GenerateChunk(n)
	lr := make([]*frame.Frame, n)
	for i, f := range hr {
		lr[i], err = frame.Downscale(f, scale)
		if err != nil {
			t.Fatal(err)
		}
	}
	enc, err := vcodec.NewEncoder(vcodec.Config{
		Width: 144, Height: 96, FPS: 30, BitrateKbps: 900,
		GOP: 24, AltRefInterval: 8, Mode: vcodec.ModeConstrainedVBR,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream, err = enc.EncodeAll(lr)
	if err != nil {
		t.Fatal(err)
	}
	return hr, stream
}

func TestModelConfigValidate(t *testing.T) {
	good := HighQuality()
	if err := good.Validate(); err != nil {
		t.Errorf("high-quality config invalid: %v", err)
	}
	bad := []ModelConfig{
		{Blocks: 0, Channels: 32, Scale: 3},
		{Blocks: 8, Channels: 0, Scale: 3},
		{Blocks: 8, Channels: 32, Scale: 1},
		{Blocks: 8, Channels: 32, Scale: 5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
}

func TestFidelityOrdering(t *testing.T) {
	// Larger networks must remove more error; all fidelities in [0, 1).
	prev := -1.0
	for _, ch := range []int{10, 20, 24, 32, 48} {
		f := (ModelConfig{Blocks: 8, Channels: ch, Scale: 3}).Fidelity()
		if f <= prev {
			t.Errorf("fidelity not increasing at channels=%d: %v <= %v", ch, f, prev)
		}
		if f < 0 || f >= 1 {
			t.Errorf("fidelity %v out of [0, 1)", f)
		}
		prev = f
	}
}

func TestWeightBytesScaling(t *testing.T) {
	small := (ModelConfig{Blocks: 8, Channels: 16, Scale: 3}).WeightBytes()
	big := (ModelConfig{Blocks: 8, Channels: 32, Scale: 3}).WeightBytes()
	if big != small*4 {
		t.Errorf("weights should scale with channels^2: %d vs %d", small, big)
	}
}

func TestOracleModelBeatsBicubic(t *testing.T) {
	hr, stream := testStream(t, "lol", 8)
	decoded, err := vcodec.DecodeStream(stream)
	if err != nil {
		t.Fatal(err)
	}
	model, err := NewOracleModel(HighQuality(), hr)
	if err != nil {
		t.Fatal(err)
	}
	bicubic, err := NewBicubicModel(3)
	if err != nil {
		t.Fatal(err)
	}
	var d0 *vcodec.Decoded
	for _, d := range decoded {
		if d.Info.Visible {
			d0 = d
			break
		}
	}
	srOut, err := model.Apply(d0.Frame, d0.Info.DisplayIndex)
	if err != nil {
		t.Fatal(err)
	}
	upOut, err := bicubic.Apply(d0.Frame, d0.Info.DisplayIndex)
	if err != nil {
		t.Fatal(err)
	}
	srPSNR, _ := metrics.PSNR(hr[0], srOut)
	upPSNR, _ := metrics.PSNR(hr[0], upOut)
	if srPSNR < upPSNR+2 {
		t.Errorf("SR %.2f dB vs bicubic %.2f dB: want >= 2 dB gain", srPSNR, upPSNR)
	}
}

func TestOracleModelNotPerfect(t *testing.T) {
	hr, stream := testStream(t, "lol", 4)
	decoded, _ := vcodec.DecodeStream(stream)
	model, _ := NewOracleModel(HighQuality(), hr)
	out, err := model.Apply(decoded[0].Frame, 0)
	if err != nil {
		t.Fatal(err)
	}
	psnr, _ := metrics.PSNR(hr[0], out)
	if psnr > 55 {
		t.Errorf("oracle output suspiciously perfect: %.2f dB", psnr)
	}
}

func TestOracleModelRangeChecked(t *testing.T) {
	hr, stream := testStream(t, "lol", 4)
	decoded, _ := vcodec.DecodeStream(stream)
	model, _ := NewOracleModel(HighQuality(), hr)
	if _, err := model.Apply(decoded[0].Frame, 99); err == nil {
		t.Error("Apply accepted out-of-range display index")
	}
	if _, err := NewOracleModel(HighQuality(), nil); err == nil {
		t.Error("NewOracleModel accepted empty training set")
	}
	if _, err := NewOracleModel(ModelConfig{}, hr); err == nil {
		t.Error("NewOracleModel accepted invalid config")
	}
}

func TestBiggerModelHigherQuality(t *testing.T) {
	hr, stream := testStream(t, "gta", 6)
	decoded, _ := vcodec.DecodeStream(stream)
	psnrFor := func(ch int) float64 {
		model, err := NewOracleModel(ModelConfig{Blocks: 8, Channels: ch, Scale: 3}, hr)
		if err != nil {
			t.Fatal(err)
		}
		out, err := model.Apply(decoded[0].Frame, 0)
		if err != nil {
			t.Fatal(err)
		}
		p, _ := metrics.PSNR(hr[0], out)
		return p
	}
	if psnrFor(32) <= psnrFor(10) {
		t.Error("larger network did not improve anchor quality")
	}
}

func TestSelectiveReconstruction(t *testing.T) {
	hr, stream := testStream(t, "lol", 16)
	model, err := NewOracleModel(HighQuality(), hr)
	if err != nil {
		t.Fatal(err)
	}
	// Anchor every key and altref packet only (sparse anchors).
	anchors := make(map[int]bool)
	for i, p := range stream.Packets {
		if p.Info.Type != vcodec.Inter {
			anchors[i] = true
		}
	}
	out, err := EnhanceStream(stream, model, anchors)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 16 {
		t.Fatalf("got %d output frames, want 16", len(out))
	}
	selPSNR, err := metrics.MeanPSNR(hr, out)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: plain bilinear upscale of decoded frames.
	bicubic, _ := NewBicubicModel(3)
	baseOut, err := EnhanceStream(stream, bicubic, map[int]bool{})
	if err != nil {
		t.Fatal(err)
	}
	basePSNR, _ := metrics.MeanPSNR(hr, baseOut)
	if selPSNR <= basePSNR {
		t.Errorf("selective SR %.2f dB did not beat plain upscale %.2f dB", selPSNR, basePSNR)
	}
}

func TestMoreAnchorsMoreQuality(t *testing.T) {
	hr, stream := testStream(t, "fortnite", 16)
	model, _ := NewOracleModel(HighQuality(), hr)
	psnrFor := func(anchors map[int]bool) float64 {
		out, err := EnhanceStream(stream, model, anchors)
		if err != nil {
			t.Fatal(err)
		}
		p, _ := metrics.MeanPSNR(hr, out)
		return p
	}
	few := make(map[int]bool)
	for i, p := range stream.Packets {
		if p.Info.Type == vcodec.Key {
			few[i] = true
		}
	}
	all := AllVisibleAnchors(stream)
	if psnrFor(all) <= psnrFor(few) {
		t.Error("per-frame anchors did not beat key-only anchors")
	}
}

func TestErrorAccumulatesBetweenAnchors(t *testing.T) {
	// With a single anchor at the start, per-frame PSNR should trend
	// downward across the non-anchor run (loss accumulation, §2).
	hr, stream := testStream(t, "gta", 12)
	model, _ := NewOracleModel(HighQuality(), hr)
	anchors := map[int]bool{0: true}
	out, err := EnhanceStream(stream, model, anchors)
	if err != nil {
		t.Fatal(err)
	}
	first, _ := metrics.PSNR(hr[0], out[0])
	var tail float64
	for _, i := range []int{9, 10, 11} {
		p, _ := metrics.PSNR(hr[i], out[i])
		tail += p / 3
	}
	if tail >= first {
		t.Errorf("no accumulation: first %.2f dB, tail mean %.2f dB", first, tail)
	}
}

func TestAnchorResetsAccumulatedLoss(t *testing.T) {
	hr, stream := testStream(t, "gta", 16)
	model, _ := NewOracleModel(HighQuality(), hr)
	// Anchor at packet 0 and at the packet of display frame 12.
	anchors := map[int]bool{0: true}
	idx12 := -1
	for i, p := range stream.Packets {
		if p.Info.Visible && p.Info.DisplayIndex == 12 {
			idx12 = i
		}
	}
	if idx12 < 0 {
		t.Fatal("no packet for display frame 12")
	}
	anchors[idx12] = true
	out, err := EnhanceStream(stream, model, anchors)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := metrics.PSNR(hr[11], out[11])
	at, _ := metrics.PSNR(hr[12], out[12])
	if at <= before {
		t.Errorf("anchor did not reset loss: frame 11 %.2f dB, frame 12 %.2f dB", before, at)
	}
}

func TestReconstructorCountsAndErrors(t *testing.T) {
	hr, stream := testStream(t, "lol", 8)
	model, _ := NewOracleModel(HighQuality(), hr)
	rec, err := NewReconstructor(model, stream.Config)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := vcodec.NewDecoderFor(stream)
	dec.CaptureResidual = true
	for i, p := range stream.Packets {
		d, err := dec.Decode(p.Data)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rec.Process(d, i == 0); err != nil {
			t.Fatal(err)
		}
	}
	if rec.AnchorCount() != 1 {
		t.Errorf("AnchorCount = %d, want 1", rec.AnchorCount())
	}
	if rec.FrameCount() != len(stream.Packets) {
		t.Errorf("FrameCount = %d, want %d", rec.FrameCount(), len(stream.Packets))
	}
	// Wrong-size frame rejected.
	if _, err := rec.Process(&vcodec.Decoded{Frame: frame.MustNew(10, 10)}, false); err == nil {
		t.Error("Process accepted wrong-size frame")
	}
}

func TestReuseRequiresResidual(t *testing.T) {
	hr, stream := testStream(t, "lol", 6)
	model, _ := NewOracleModel(HighQuality(), hr)
	rec, _ := NewReconstructor(model, stream.Config)
	dec, _ := vcodec.NewDecoderFor(stream) // CaptureResidual NOT set
	for i, p := range stream.Packets {
		d, err := dec.Decode(p.Data)
		if err != nil {
			t.Fatal(err)
		}
		_, err = rec.Process(d, false)
		if i == 0 {
			if err != nil {
				t.Fatalf("key frame processing failed: %v", err)
			}
			continue
		}
		if err == nil {
			t.Fatal("reuse path accepted packet without captured residual")
		}
		return
	}
}

func TestTargetedTrainingBoostsTargets(t *testing.T) {
	hr, stream := testStream(t, "lol", 8)
	decoded, err := vcodec.DecodeStream(stream)
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := NewOracleModel(HighQuality(), hr)
	if err != nil {
		t.Fatal(err)
	}
	targeted, err := NewOracleModelTargeted(HighQuality(), hr, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	psnrOf := func(m Model, idx int) float64 {
		out, err := m.Apply(decoded[idx].Frame, decoded[idx].Info.DisplayIndex)
		if err != nil {
			t.Fatal(err)
		}
		p, _ := metrics.PSNR(hr[decoded[idx].Info.DisplayIndex], out)
		return p
	}
	// Frame 0 is targeted: targeted model must beat uniform there.
	if psnrOf(targeted, 0) <= psnrOf(uniform, 0) {
		t.Error("targeted training did not improve the target frame")
	}
	// A non-target frame pays a small price.
	lastVisible := -1
	for i, d := range decoded {
		if d.Info.Visible && d.Info.DisplayIndex > 0 {
			lastVisible = i
			break
		}
	}
	if lastVisible >= 0 && psnrOf(targeted, lastVisible) > psnrOf(uniform, lastVisible) {
		t.Error("non-target frame should not improve under a fixed training budget")
	}
}

func TestTargetedTrainingValidation(t *testing.T) {
	hr, _ := testStream(t, "lol", 4)
	if _, err := NewOracleModelTargeted(HighQuality(), hr, nil); err == nil {
		t.Error("empty target set accepted")
	}
	if _, err := NewOracleModelTargeted(HighQuality(), hr, []int{99}); err == nil {
		t.Error("out-of-range target accepted")
	}
}

func TestProvidedReconstructor(t *testing.T) {
	hr, stream := testStream(t, "lol", 10)
	model, err := NewOracleModel(HighQuality(), hr)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewProvidedReconstructor(3, stream.Config)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := vcodec.NewDecoderFor(stream)
	dec.CaptureResidual = true
	var out []*frame.Frame
	for i, pkt := range stream.Packets {
		d, err := dec.Decode(pkt.Data)
		if err != nil {
			t.Fatal(err)
		}
		var provided *frame.Frame
		if i == 0 { // provide the key anchor externally
			if provided, err = model.Apply(d.Frame, d.Info.DisplayIndex); err != nil {
				t.Fatal(err)
			}
		}
		hrOut, err := rec.ProcessProvided(d, provided)
		if err != nil {
			t.Fatal(err)
		}
		if hrOut != nil {
			out = append(out, hrOut)
		}
	}
	if len(out) != 10 {
		t.Fatalf("decoded %d frames", len(out))
	}
	if rec.AnchorCount() != 1 {
		t.Errorf("AnchorCount = %d", rec.AnchorCount())
	}
	psnr, _ := metrics.MeanPSNR(hr, out)
	if psnr < 25 {
		t.Errorf("provided-anchor reconstruction %.2f dB", psnr)
	}
}

func TestProvidedReconstructorValidation(t *testing.T) {
	_, stream := testStream(t, "lol", 4)
	if _, err := NewProvidedReconstructor(1, stream.Config); err == nil {
		t.Error("scale 1 accepted")
	}
	rec, err := NewProvidedReconstructor(3, stream.Config)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := vcodec.NewDecoderFor(stream)
	dec.CaptureResidual = true
	d, err := dec.Decode(stream.Packets[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong-size provided anchor rejected.
	if _, err := rec.ProcessProvided(d, frame.MustNew(10, 10)); err == nil {
		t.Error("wrong-size provided anchor accepted")
	}
	// Model-free reconstructor must refuse the model path.
	if _, err := rec.Process(d, true); err == nil {
		t.Error("model-free reconstructor ran the anchor path")
	}
}
