package edge

import (
	"net"
	"testing"
	"time"

	"github.com/neuroscaler/neuroscaler/internal/wire"
)

// BenchmarkEdgeServe measures the steady-state serve path: one viewer
// conn fetching a cache-resident chunk over raw wire frames. The
// interesting number is allocs/op — the zero-copy fanout write
// (marshal-once prefix + per-delivery flags tail) must not re-marshal
// the container per delivery. Gated in CI against bench_budget.json.
func BenchmarkEdgeServe(b *testing.B) {
	origin := startOrigin(b, true, []uint32{5}, 1)
	e := startEdge(b, origin, Config{})

	conn, err := net.Dial("tcp", e.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	var seqs wire.SeqSource

	fetch := func() {
		_ = conn.SetDeadline(time.Now().Add(30 * time.Second))
		err := wire.Write(conn, wire.Message{
			Type: wire.TypeFetchChunk, StreamID: 5, Seq: seqs.Next(),
			Payload: wire.EncodeFetchChunk(wire.FetchChunk{Seq: 0}),
		})
		if err != nil {
			b.Fatal(err)
		}
		reply, err := wire.Read(conn, wire.DefaultMaxPayload)
		if err != nil {
			b.Fatal(err)
		}
		if reply.Type != wire.TypeChunkData {
			b.Fatalf("reply type %v", reply.Type)
		}
	}

	fetch() // warm: populates the cache via the one upstream build
	if c := e.Counters(); c.CacheMisses != 1 {
		b.Fatalf("warm fetch: misses = %d, want 1", c.CacheMisses)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fetch()
	}
	b.StopTimer()
	c := e.Counters()
	if c.CacheHits < uint64(b.N) {
		b.Fatalf("hits = %d, want >= %d (all timed fetches cache-resident)", c.CacheHits, b.N)
	}
}
