package edge

import "sync"

// flight is one in-progress upstream fetch that concurrent missers of
// the same key wait on instead of duplicating. The leader publishes the
// result and grants each waiter its own entry reference before closing
// done, so waiters never race the cache's release.
type flight struct {
	done    chan struct{}
	waiters int
	// settled flips under the group mutex when the leader begins
	// publishing; it tells an abandoning waiter whether its reference
	// grant is already (or about to be) minted.
	settled bool
	ent     *entry
	err     error
}

// flightGroup coalesces upstream fetches per key: at most one flight
// per key is airborne at a time. This is what turns N viewers arriving
// at a cold chunk into exactly one origin fetch and one enhancement.
type flightGroup struct {
	mu      sync.Mutex
	flights map[Key]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[Key]*flight)}
}

// join returns the flight for k and whether the caller is its leader.
// Leaders must eventually call complete; waiters block on f.done and
// then read f.ent/f.err, releasing f.ent when their delivery is
// written.
func (g *flightGroup) join(k Key) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.flights[k]; ok {
		f.waiters++
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	g.flights[k] = f
	return f, true
}

// complete publishes the leader's result: it retires the flight, grants
// one reference per waiter (the leader keeps its own creator
// reference), and wakes everyone. The caller must already have admitted
// ent to the cache (or decided not to) — retiring the flight after the
// cache insert closes the window where a new misser would find neither
// the flight nor the cached entry and refetch.
func (g *flightGroup) complete(k Key, f *flight, ent *entry, err error) {
	g.mu.Lock()
	delete(g.flights, k)
	waiters := f.waiters
	f.settled = true
	g.mu.Unlock()
	if ent != nil {
		for i := 0; i < waiters; i++ {
			ent.retain()
		}
	}
	f.ent, f.err = ent, err
	close(f.done)
}

// abandon retracts a waiter whose budget ran out before the flight
// landed. Before the leader settles, the waiter count is decremented so
// no reference is minted for the deserter; after, the grant already
// exists (or is being minted concurrently), so abandon waits for the
// publish to finish and releases it — either way the refcount ledger
// balances.
func (g *flightGroup) abandon(f *flight) {
	g.mu.Lock()
	if !f.settled {
		f.waiters--
		g.mu.Unlock()
		return
	}
	g.mu.Unlock()
	<-f.done // grants are complete once done closes
	if f.ent != nil {
		f.ent.release()
	}
}
