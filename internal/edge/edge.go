package edge

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/neuroscaler/neuroscaler/internal/media"
	"github.com/neuroscaler/neuroscaler/internal/par"
	"github.com/neuroscaler/neuroscaler/internal/wire"
)

const (
	// DefaultCacheBytes holds a few thousand test-geometry containers —
	// enough that eviction pressure is a deliberate test knob, not an
	// accident of defaults.
	DefaultCacheBytes = 64 << 20
	// DefaultShards spreads cache locking; fanout-heavy serving touches
	// the cache from every viewer conn's goroutine.
	DefaultShards = 8
	// DefaultUpstreamConns bounds concurrent origin fetches. Misses
	// beyond it queue for a conn, which is the delivery tier's natural
	// origin-protection throttle.
	DefaultUpstreamConns = 4
	// DefaultFetchBudget is the end-to-end deadline assumed for a fetch
	// that arrived without a wire budget.
	DefaultFetchBudget = 10 * time.Second
	// DefaultReadTimeout is the viewer-conn idle bound. Subscribers that
	// send nothing must ping within it or be reaped.
	DefaultReadTimeout = 2 * time.Minute
	// DefaultWriteTimeout bounds each delivery write so one stalled
	// viewer cannot wedge a fanout goroutine.
	DefaultWriteTimeout = 10 * time.Second
	// maxRequestPayload caps viewer->edge frames; requests are a few
	// bytes, so anything large is a protocol violation.
	maxRequestPayload = 4 << 10
)

// Config parameterizes an Edge.
type Config struct {
	// Upstream is the origin media server's wire address (required).
	Upstream string
	// CacheBytes bounds resident cached payload bytes; zero uses
	// DefaultCacheBytes.
	CacheBytes int64
	// Shards is the cache lock-domain count; zero uses DefaultShards.
	Shards int
	// UpstreamConns is the origin connection pool size; zero uses
	// DefaultUpstreamConns.
	UpstreamConns int
	// FetchBudget is the deadline granted to fetches that carry no wire
	// budget; zero uses DefaultFetchBudget.
	FetchBudget time.Duration
	// ReadTimeout bounds the wait for the next viewer frame; zero uses
	// DefaultReadTimeout.
	ReadTimeout time.Duration
	// WriteTimeout bounds each delivery write; zero uses
	// DefaultWriteTimeout.
	WriteTimeout time.Duration
	// DialUpstream overrides how origin connections are made (fault
	// injection, wrapped conns); nil uses net.Dial.
	DialUpstream func(addr string) (net.Conn, error)
	// PassThrough disables the cache AND single-flight coalescing:
	// every fetch goes upstream. This is the no-cache baseline the
	// fanout benchmarks compare against; production edges leave it off.
	PassThrough bool
	// Logf sinks diagnostics; nil discards.
	Logf func(format string, args ...any)
}

// Counters is a point-in-time snapshot of edge activity. CacheHits
// counts deliveries straight from memory; CacheMisses counts leader
// fetches to the origin; CoalescedWaits counts deliveries that rode an
// already-airborne fetch instead of duplicating it. Hit rate for the
// amortization economics is (hits+coalesced)/(hits+coalesced+misses):
// coalesced waiters consumed no extra origin work.
type Counters struct {
	CacheHits        uint64 `json:"cache_hits"`
	CacheMisses      uint64 `json:"cache_misses"`
	CoalescedWaits   uint64 `json:"coalesced_waits"`
	AdmissionRejects uint64 `json:"admission_rejects"`
	Evictions        uint64 `json:"evictions"`
	UpstreamErrors   uint64 `json:"upstream_errors"`
	FanoutPushes     uint64 `json:"fanout_pushes"`
	FetchesServed    uint64 `json:"fetches_served"`
	Subscribers      int64  `json:"subscribers"`
}

// AmortizedRate returns the fraction of chunk deliveries that consumed
// no fresh origin fetch (cache hits plus coalesced waits).
func (c Counters) AmortizedRate() float64 {
	total := c.CacheHits + c.CoalescedWaits + c.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(c.CacheHits+c.CoalescedWaits) / float64(total)
}

// Edge is the delivery-tier server: it listens for viewer connections
// speaking the wire protocol (fetch, subscribe, ping), serves enhanced
// containers from its cache, and fetches misses from the origin with
// single-flight coalescing and budget-bounded deadlines.
type Edge struct {
	cfg       Config
	ln        net.Listener
	cache     *Cache
	flights   *flightGroup
	pool      par.SlabPool[byte]
	upstreams chan *upstreamConn

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once

	subMu sync.Mutex
	// subs indexes live subscribers by stream; byConn tracks each
	// viewer conn's subscriptions for teardown. Both guarded by subMu,
	// as is every subscriber's lastSeq watermark.
	subs   map[uint32]map[*subscriber]struct{}
	byConn map[*viewerConn][]*subscriber
	nSubs  atomic.Int64

	hits             atomic.Uint64
	misses           atomic.Uint64
	coalescedWaits   atomic.Uint64
	admissionRejects atomic.Uint64
	upstreamErrors   atomic.Uint64
	fanoutPushes     atomic.Uint64
	fetchesServed    atomic.Uint64

	hitLatency  *media.LatencyHist
	missLatency *media.LatencyHist
}

// NewEdge starts an edge listening on addr (use "127.0.0.1:0" in
// tests) in front of cfg.Upstream.
func NewEdge(addr string, cfg Config) (*Edge, error) {
	if cfg.Upstream == "" {
		return nil, errors.New("edge: Config.Upstream required")
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = DefaultCacheBytes
	}
	if cfg.Shards == 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.UpstreamConns == 0 {
		cfg.UpstreamConns = DefaultUpstreamConns
	}
	if cfg.FetchBudget == 0 {
		cfg.FetchBudget = DefaultFetchBudget
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = DefaultReadTimeout
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	if cfg.DialUpstream == nil {
		cfg.DialUpstream = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("edge: listen: %w", err)
	}
	e := &Edge{
		cfg:         cfg,
		ln:          ln,
		cache:       NewCache(cfg.CacheBytes, cfg.Shards),
		flights:     newFlightGroup(),
		upstreams:   make(chan *upstreamConn, cfg.UpstreamConns),
		closed:      make(chan struct{}),
		subs:        make(map[uint32]map[*subscriber]struct{}),
		byConn:      make(map[*viewerConn][]*subscriber),
		hitLatency:  media.NewLatencyHist(),
		missLatency: media.NewLatencyHist(),
	}
	for i := 0; i < cfg.UpstreamConns; i++ {
		e.upstreams <- &upstreamConn{}
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr returns the edge's listen address.
func (e *Edge) Addr() string { return e.ln.Addr().String() }

// Close stops accepting, tears down viewer conns, and joins all
// serving goroutines. Closing twice is a no-op.
func (e *Edge) Close() error {
	var err error
	e.closeOnce.Do(func() {
		close(e.closed)
		err = e.ln.Close()
		e.subMu.Lock()
		for c := range e.byConn {
			_ = c.conn.Close()
		}
		e.subMu.Unlock()
		e.wg.Wait()
		for i := 0; i < cap(e.upstreams); i++ {
			u := <-e.upstreams
			if u.conn != nil {
				_ = u.conn.Close()
			}
		}
	})
	return err
}

// Counters snapshots edge activity.
func (e *Edge) Counters() Counters {
	return Counters{
		CacheHits:        e.hits.Load(),
		CacheMisses:      e.misses.Load(),
		CoalescedWaits:   e.coalescedWaits.Load(),
		AdmissionRejects: e.admissionRejects.Load(),
		Evictions:        e.cache.Evictions(),
		UpstreamErrors:   e.upstreamErrors.Load(),
		FanoutPushes:     e.fanoutPushes.Load(),
		FetchesServed:    e.fetchesServed.Load(),
		Subscribers:      e.nSubs.Load(),
	}
}

// HitLatency exposes the cache-hit serve-latency histogram.
func (e *Edge) HitLatency() *media.LatencyHist { return e.hitLatency }

// MissLatency exposes the miss (origin round-trip) serve-latency
// histogram.
func (e *Edge) MissLatency() *media.LatencyHist { return e.missLatency }

func (e *Edge) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			select {
			case <-e.closed:
			default:
				e.cfg.Logf("edge: accept: %v", err)
			}
			return
		}
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer conn.Close()
			if err := e.serveConn(conn); err != nil {
				e.cfg.Logf("edge: conn %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// viewerConn wraps one viewer connection with a write lock so the
// conn's own request/reply goroutine and fanout pushes from other
// goroutines interleave whole frames, each under a write deadline.
type viewerConn struct {
	conn    net.Conn
	timeout time.Duration
	mu      sync.Mutex
}

func (c *viewerConn) write(m wire.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_ = c.conn.SetWriteDeadline(time.Now().Add(c.timeout))
	return wire.Write(c.conn, m)
}

func (c *viewerConn) writeShared(m wire.Message, prefix, tail []byte, crcPrefix uint32) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_ = c.conn.SetWriteDeadline(time.Now().Add(c.timeout))
	return wire.WriteShared(c.conn, m, prefix, tail, crcPrefix)
}

func (c *viewerConn) writeError(streamID, seq uint32, err error) error {
	return c.write(wire.Message{
		Type: wire.TypeError, StreamID: streamID, Seq: seq, Payload: []byte(err.Error()),
	})
}

// subscriber is one viewer's standing request for a stream's chunks.
// lastSeq is the highest sequence already pushed (subMu-guarded), the
// at-most-once watermark for fanout.
type subscriber struct {
	c       *viewerConn
	stream  uint32
	quality uint8
	lastSeq int64
}

func (e *Edge) serveConn(conn net.Conn) error {
	c := &viewerConn{conn: conn, timeout: e.cfg.WriteTimeout}
	// Register the conn (with no subscriptions yet) so Close can reach
	// it even while it idles in a read.
	e.subMu.Lock()
	e.byConn[c] = nil
	e.subMu.Unlock()
	defer e.dropConn(c)
	select {
	case <-e.closed:
		return nil
	default:
	}
	for {
		_ = conn.SetReadDeadline(time.Now().Add(e.cfg.ReadTimeout))
		msg, err := wire.Read(conn, maxRequestPayload)
		if err != nil {
			select {
			case <-e.closed:
				return nil
			default:
			}
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		switch msg.Type {
		case wire.TypePing:
			if err := c.write(wire.Message{Type: wire.TypePong, StreamID: msg.StreamID, Seq: msg.Seq}); err != nil {
				return err
			}
		case wire.TypeGoodbye:
			return nil
		case wire.TypeFetchChunk:
			if err := e.handleFetch(c, msg); err != nil {
				return err
			}
		case wire.TypeSubscribe:
			if err := e.handleSubscribe(c, msg); err != nil {
				return err
			}
		default:
			return fmt.Errorf("edge: unexpected %v frame", msg.Type)
		}
	}
}

// handleFetch serves one chunk request: cache hit, coalesced wait, or
// leader fetch from the origin. Request-level failures (unknown chunk,
// origin error) answer with a typed error and keep the conn; only a
// broken viewer conn is fatal.
func (e *Edge) handleFetch(c *viewerConn, msg wire.Message) error {
	req, err := wire.DecodeFetchChunk(msg.Payload)
	if err != nil {
		_ = c.writeError(msg.StreamID, msg.Seq, err)
		return fmt.Errorf("edge: bad fetch payload: %w", err)
	}
	start := time.Now()
	budget := msg.Budget
	if budget <= 0 {
		budget = e.cfg.FetchBudget
	}
	k := Key{Stream: msg.StreamID, Seq: req.Seq, Quality: req.Quality}
	ent, hit, err := e.getChunk(k, start.Add(budget))
	if err != nil {
		return c.writeError(msg.StreamID, msg.Seq, err)
	}
	e.fetchesServed.Add(1)
	tail := [1]byte{wire.ChunkDataFlags(ent.degraded, hit)}
	werr := c.writeShared(wire.Message{
		Type: wire.TypeChunkData, StreamID: k.Stream, Seq: msg.Seq,
	}, ent.prefix, tail[:], ent.crcPrefix)
	if hit {
		e.hitLatency.Observe(time.Since(start))
	} else {
		e.missLatency.Observe(time.Since(start))
	}
	if werr == nil {
		e.fanout(k, ent)
	}
	ent.release()
	return werr
}

// getChunk resolves a key to a refcounted entry: cache first, then the
// per-key flight (joining an airborne fetch if one exists, else leading
// one). The caller owns one reference on the returned entry.
func (e *Edge) getChunk(k Key, deadline time.Time) (ent *entry, hit bool, err error) {
	if e.cfg.PassThrough {
		e.misses.Add(1)
		ent, err = e.fetchUpstream(k, deadline)
		return ent, false, err
	}
	if ent, ok := e.cache.Get(k); ok {
		e.hits.Add(1)
		return ent, true, nil
	}
	f, leader := e.flights.join(k)
	if !leader {
		e.coalescedWaits.Add(1)
		// Wait only as long as this request's own budget allows: the
		// leader's fetch is bounded by the *leader's* deadline, which may
		// be later than ours.
		wait := time.NewTimer(time.Until(deadline))
		defer wait.Stop()
		select {
		case <-f.done:
		case <-wait.C:
			e.flights.abandon(f)
			return nil, false, fmt.Errorf("edge: budget exhausted waiting on in-flight fetch of stream %d chunk %d", k.Stream, k.Seq)
		}
		if f.err != nil {
			return nil, false, f.err
		}
		return f.ent, false, nil
	}
	e.misses.Add(1)
	ent, err = e.fetchUpstream(k, deadline)
	if err == nil && !e.cache.Admit(ent) {
		e.admissionRejects.Add(1)
	}
	// Admit-then-complete: by the time waiters can refetch, the cache
	// already holds the entry (or admission deliberately declined it).
	e.flights.complete(k, f, ent, err)
	if err != nil {
		return nil, false, err
	}
	return ent, false, nil
}

func (e *Edge) handleSubscribe(c *viewerConn, msg wire.Message) error {
	req, err := wire.DecodeSubscribe(msg.Payload)
	if err != nil {
		_ = c.writeError(msg.StreamID, msg.Seq, err)
		return fmt.Errorf("edge: bad subscribe payload: %w", err)
	}
	sub := &subscriber{c: c, stream: msg.StreamID, quality: req.Quality, lastSeq: int64(req.FromSeq) - 1}
	e.subMu.Lock()
	m := e.subs[msg.StreamID]
	if m == nil {
		m = make(map[*subscriber]struct{})
		e.subs[msg.StreamID] = m
	}
	m[sub] = struct{}{}
	e.byConn[c] = append(e.byConn[c], sub)
	e.subMu.Unlock()
	e.nSubs.Add(1)
	return c.write(wire.Message{Type: wire.TypeSubscribe, StreamID: msg.StreamID, Seq: msg.Seq})
}

// fanout pushes a just-served chunk to every subscriber of its stream
// that has not yet seen this sequence, as unsolicited (Seq 0) frames
// sharing the cached prefix — the marshal-once, write-N path.
func (e *Edge) fanout(k Key, ent *entry) {
	e.subMu.Lock()
	var targets []*subscriber
	for sub := range e.subs[k.Stream] {
		if sub.quality == k.Quality && int64(k.Seq) > sub.lastSeq {
			sub.lastSeq = int64(k.Seq)
			targets = append(targets, sub)
		}
	}
	e.subMu.Unlock()
	if len(targets) == 0 {
		return
	}
	tail := [1]byte{wire.ChunkDataFlags(ent.degraded, true)}
	msg := wire.Message{Type: wire.TypeChunkData, StreamID: k.Stream, Seq: 0}
	for _, sub := range targets {
		if err := sub.c.writeShared(msg, ent.prefix, tail[:], ent.crcPrefix); err != nil {
			e.cfg.Logf("edge: push to %s: %v", sub.c.conn.RemoteAddr(), err)
			e.removeSubscriber(sub)
			continue
		}
		e.fanoutPushes.Add(1)
	}
}

func (e *Edge) removeSubscriber(sub *subscriber) {
	e.subMu.Lock()
	defer e.subMu.Unlock()
	m := e.subs[sub.stream]
	if _, ok := m[sub]; !ok {
		return
	}
	delete(m, sub)
	if len(m) == 0 {
		delete(e.subs, sub.stream)
	}
	e.nSubs.Add(-1)
}

func (e *Edge) dropConn(c *viewerConn) {
	e.subMu.Lock()
	subs := e.byConn[c]
	delete(e.byConn, c)
	for _, sub := range subs {
		m := e.subs[sub.stream]
		if _, ok := m[sub]; !ok {
			continue
		}
		delete(m, sub)
		if len(m) == 0 {
			delete(e.subs, sub.stream)
		}
		e.nSubs.Add(-1)
	}
	e.subMu.Unlock()
}

// upstreamConn is one pooled origin connection; exclusivity comes from
// the pool channel, so requests on it are strictly serial and replies
// correlate by echoed Seq.
type upstreamConn struct {
	conn net.Conn
	seqs wire.SeqSource
}

// fetchUpstream checks out a pooled origin conn, runs one fetch on it,
// and returns the conn to the pool (broken conns are closed and redial
// lazily, which is what lets the edge ride out an origin restart).
func (e *Edge) fetchUpstream(k Key, deadline time.Time) (*entry, error) {
	var u *upstreamConn
	// Checking out a conn spends the same budget the fetch does: under
	// origin slowness the pool drains, and an unbounded wait here would
	// queue requests past the point their viewers have given up.
	wait := time.NewTimer(time.Until(deadline))
	defer wait.Stop()
	select {
	case u = <-e.upstreams:
	case <-e.closed:
		return nil, errors.New("edge: shutting down")
	case <-wait.C:
		return nil, fmt.Errorf("edge: budget exhausted waiting for an upstream conn (stream %d chunk %d)", k.Stream, k.Seq)
	}
	ent, err := e.fetchOn(u, k, deadline)
	e.upstreams <- u
	if err != nil {
		e.upstreamErrors.Add(1)
	}
	return ent, err
}

func (e *Edge) fetchOn(u *upstreamConn, k Key, deadline time.Time) (*entry, error) {
	budget := time.Until(deadline)
	if budget <= 0 {
		return nil, fmt.Errorf("edge: budget exhausted before fetch of stream %d chunk %d", k.Stream, k.Seq)
	}
	if u.conn == nil {
		conn, err := e.cfg.DialUpstream(e.cfg.Upstream)
		if err != nil {
			return nil, fmt.Errorf("edge: dial upstream: %w", err)
		}
		u.conn = conn
	}
	// One deadline covers the whole round trip; the origin gets the
	// remaining budget and re-derives its own deadline (relative budget
	// semantics survive clock skew between tiers).
	_ = u.conn.SetDeadline(deadline)
	seq := u.seqs.Next()
	err := wire.Write(u.conn, wire.Message{
		Type: wire.TypeFetchChunk, StreamID: k.Stream, Seq: seq, Budget: budget,
		Payload: wire.EncodeFetchChunk(wire.FetchChunk{Seq: k.Seq, Quality: k.Quality}),
	})
	if err != nil {
		u.breakConn()
		return nil, fmt.Errorf("edge: upstream write: %w", err)
	}
	msg, err := wire.ReadPooled(u.conn, wire.DefaultMaxPayload, &e.pool)
	var ent *entry
	if err == nil {
		ent, err = e.parseReply(u, k, seq, msg)
	} else {
		u.breakConn()
		err = fmt.Errorf("edge: upstream read: %w", err)
	}
	return ent, err
}

// parseReply validates one origin reply frame and wraps its payload as
// a cache entry. Ownership of msg's pooled payload transfers here:
// every outcome either recycles the slab or hands it to the entry.
//
//nslint:slab-transfer msg
func (e *Edge) parseReply(u *upstreamConn, k Key, seq uint32, msg wire.Message) (*entry, error) {
	gotSeq, typ := msg.Seq, msg.Type
	if gotSeq != seq {
		e.pool.Put(msg.Payload)
		u.breakConn()
		return nil, fmt.Errorf("edge: upstream reply seq %d, want %d", gotSeq, seq)
	}
	if typ == wire.TypeError {
		reason := string(msg.Payload)
		e.pool.Put(msg.Payload)
		return nil, fmt.Errorf("edge: origin: %s", reason)
	}
	if typ != wire.TypeChunkData {
		e.pool.Put(msg.Payload)
		u.breakConn()
		return nil, fmt.Errorf("edge: upstream reply type %v", typ)
	}
	ent, err := newEntry(k, msg.Payload, &e.pool)
	if err != nil {
		u.breakConn()
		return nil, err
	}
	return ent, nil
}

// newEntry wraps a raw ChunkData payload slab as a refcounted cache
// entry with one reference held by the caller. Ownership of slab
// transfers here: on a malformed payload the slab goes straight back to
// the pool.
//
//nslint:slab-transfer slab
func newEntry(k Key, slab []byte, pool *par.SlabPool[byte]) (*entry, error) {
	cd, err := wire.DecodeChunkDataAlias(slab)
	if err != nil {
		pool.Put(slab)
		return nil, fmt.Errorf("edge: upstream chunk data: %w", err)
	}
	if cd.Seq != k.Seq {
		pool.Put(slab)
		return nil, fmt.Errorf("edge: origin sent chunk %d, want %d", cd.Seq, k.Seq)
	}
	prefix, _, err := wire.ChunkDataPrefix(slab)
	if err != nil {
		pool.Put(slab)
		return nil, fmt.Errorf("edge: upstream chunk data: %w", err)
	}
	ent := &entry{key: k, degraded: cd.Degraded, pool: pool}
	ent.prefix = prefix
	ent.crcPrefix = crc32.ChecksumIEEE(prefix)
	ent.slab = slab
	ent.refs.Store(1)
	return ent, nil
}

// breakConn discards a conn after a protocol or I/O failure so the
// next fetch redials.
func (u *upstreamConn) breakConn() {
	if u.conn != nil {
		_ = u.conn.Close()
		u.conn = nil
	}
}

// MetricsHandler serves GET /metrics in Prometheus text format: the
// delivery counters plus the hit-vs-miss serve-latency split that the
// ops runbook keys on (a rising miss histogram with flat hits means
// origin trouble, not edge trouble).
func (e *Edge) MetricsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		c := e.Counters()
		media.WriteCounter(w, "neuroscaler_edge_cache_hits_total", "Deliveries served from cache.", c.CacheHits)
		media.WriteCounter(w, "neuroscaler_edge_cache_misses_total", "Leader fetches to the origin.", c.CacheMisses)
		media.WriteCounter(w, "neuroscaler_edge_coalesced_waits_total", "Deliveries that rode another viewer's in-flight fetch.", c.CoalescedWaits)
		media.WriteCounter(w, "neuroscaler_edge_admission_rejects_total", "Fetched entries the popularity sketch declined to cache.", c.AdmissionRejects)
		media.WriteCounter(w, "neuroscaler_edge_evictions_total", "Entries displaced by admission pressure.", c.Evictions)
		media.WriteCounter(w, "neuroscaler_edge_upstream_errors_total", "Failed origin fetches.", c.UpstreamErrors)
		media.WriteCounter(w, "neuroscaler_edge_fanout_pushes_total", "Unsolicited chunk pushes to subscribers.", c.FanoutPushes)
		media.WriteCounter(w, "neuroscaler_edge_fetches_served_total", "Fetch requests answered with chunk data.", c.FetchesServed)
		media.WriteGauge(w, "neuroscaler_edge_subscribers", "Live subscriber registrations.", float64(c.Subscribers))
		media.WriteGauge(w, "neuroscaler_edge_cache_entries", "Resident cache entries.", float64(e.cache.Len()))
		media.WriteGauge(w, "neuroscaler_edge_cache_bytes", "Resident cached payload bytes.", float64(e.cache.Bytes()))
		media.WriteGauge(w, "neuroscaler_edge_amortized_rate", "Fraction of deliveries needing no fresh origin fetch.", c.AmortizedRate())
		e.hitLatency.WritePrometheus(w, "neuroscaler_edge_hit_latency_seconds", "Serve latency of cache-hit deliveries.")
		e.missLatency.WritePrometheus(w, "neuroscaler_edge_miss_latency_seconds", "Serve latency of deliveries that waited on an origin fetch.")
	})
	return mux
}
