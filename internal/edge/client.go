package edge

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/neuroscaler/neuroscaler/internal/wire"
)

// Push is one unsolicited chunk delivery to a subscriber.
type Push struct {
	StreamID uint32
	Chunk    wire.ChunkData
}

// Client is a viewer-side edge connection. It demuxes the shared conn:
// replies (echoed Seq) route to the waiting caller, unsolicited pushes
// (Seq 0) queue for NextPush. Fetches and subscriptions may be issued
// concurrently from multiple goroutines.
type Client struct {
	conn    net.Conn
	timeout time.Duration
	wmu     sync.Mutex
	seqs    wire.SeqSource

	mu      sync.Mutex
	pending map[uint32]chan wire.Message
	readErr error

	pushes chan Push
	closed chan struct{}
	wg     sync.WaitGroup
}

// pushBacklog bounds queued pushes per client; a viewer that stops
// draining NextPush loses the oldest pushes rather than stalling the
// edge's fanout (the live edge of the stream matters more than a
// backlog).
const pushBacklog = 256

// Dial connects to an edge. timeout bounds each request round trip
// (and is the budget stamped on fetches); zero uses
// DefaultFetchBudget.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = DefaultFetchBudget
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("edge: dial: %w", err)
	}
	c := &Client{
		conn:    conn,
		timeout: timeout,
		pending: make(map[uint32]chan wire.Message),
		pushes:  make(chan Push, pushBacklog),
		closed:  make(chan struct{}),
	}
	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

// Close tears down the connection and joins the reader.
func (c *Client) Close() error {
	select {
	case <-c.closed:
	default:
		close(c.closed)
	}
	err := c.conn.Close()
	c.wg.Wait()
	return err
}

func (c *Client) readLoop() {
	defer c.wg.Done()
	for {
		// The read deadline re-arms per frame: a client parked on a
		// subscription may legitimately idle, so the bound is generous —
		// it exists to kill the goroutine if the edge silently vanishes.
		_ = c.conn.SetReadDeadline(time.Now().Add(DefaultReadTimeout))
		msg, err := wire.Read(c.conn, wire.DefaultMaxPayload)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for seq, ch := range c.pending {
				close(ch)
				delete(c.pending, seq)
			}
			c.mu.Unlock()
			close(c.pushes)
			return
		}
		if msg.Seq == 0 {
			if msg.Type != wire.TypeChunkData {
				continue
			}
			cd, err := wire.DecodeChunkData(msg.Payload)
			if err != nil {
				continue
			}
			select {
			case c.pushes <- Push{StreamID: msg.StreamID, Chunk: cd}:
			default:
				// Backlog full: drop the oldest push to keep the newest.
				select {
				case <-c.pushes:
				default:
				}
				select {
				case c.pushes <- Push{StreamID: msg.StreamID, Chunk: cd}:
				default:
				}
			}
			continue
		}
		c.mu.Lock()
		ch := c.pending[msg.Seq]
		delete(c.pending, msg.Seq)
		c.mu.Unlock()
		if ch != nil {
			ch <- msg
		}
	}
}

// roundTrip sends one request frame and waits for its reply.
func (c *Client) roundTrip(m wire.Message) (wire.Message, error) {
	seq := c.seqs.Next()
	m.Seq = seq
	ch := make(chan wire.Message, 1)
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return wire.Message{}, fmt.Errorf("edge: conn broken: %w", err)
	}
	c.pending[seq] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	_ = c.conn.SetWriteDeadline(time.Now().Add(c.timeout))
	err := wire.Write(c.conn, m)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return wire.Message{}, fmt.Errorf("edge: write: %w", err)
	}
	reply, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.readErr
		c.mu.Unlock()
		return wire.Message{}, fmt.Errorf("edge: conn broken: %w", err)
	}
	if reply.Type == wire.TypeError {
		return wire.Message{}, fmt.Errorf("edge: remote: %s", reply.Payload)
	}
	return reply, nil
}

// FetchChunk requests one chunk, stamping the client timeout as the
// request's end-to-end budget so the edge and origin shed work the
// viewer has already abandoned.
func (c *Client) FetchChunk(streamID uint32, seq uint32, quality uint8) (wire.ChunkData, error) {
	reply, err := c.roundTrip(wire.Message{
		Type: wire.TypeFetchChunk, StreamID: streamID, Budget: c.timeout,
		Payload: wire.EncodeFetchChunk(wire.FetchChunk{Seq: seq, Quality: quality}),
	})
	if err != nil {
		return wire.ChunkData{}, err
	}
	if reply.Type != wire.TypeChunkData {
		return wire.ChunkData{}, fmt.Errorf("edge: fetch reply type %v", reply.Type)
	}
	cd, err := wire.DecodeChunkData(reply.Payload)
	if err != nil {
		return wire.ChunkData{}, fmt.Errorf("edge: fetch reply: %w", err)
	}
	return cd, nil
}

// Subscribe registers for pushes of a stream's chunks from fromSeq on;
// deliveries arrive via NextPush as other viewers' fetches populate the
// edge.
func (c *Client) Subscribe(streamID uint32, fromSeq uint32, quality uint8) error {
	reply, err := c.roundTrip(wire.Message{
		Type: wire.TypeSubscribe, StreamID: streamID,
		Payload: wire.EncodeSubscribe(wire.Subscribe{FromSeq: fromSeq, Quality: quality}),
	})
	if err != nil {
		return err
	}
	if reply.Type != wire.TypeSubscribe {
		return fmt.Errorf("edge: subscribe reply type %v", reply.Type)
	}
	return nil
}

// NextPush returns the next subscribed delivery, waiting up to timeout.
var ErrNoPush = errors.New("edge: no push within timeout")

func (c *Client) NextPush(timeout time.Duration) (Push, error) {
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case p, ok := <-c.pushes:
		if !ok {
			c.mu.Lock()
			err := c.readErr
			c.mu.Unlock()
			return Push{}, fmt.Errorf("edge: conn broken: %w", err)
		}
		return p, nil
	case <-t.C:
		return Push{}, ErrNoPush
	}
}

// Heartbeat round-trips a liveness probe (and resets the edge's idle
// reaper for quiet subscriber conns).
func (c *Client) Heartbeat() error {
	_, err := c.roundTrip(wire.Message{Type: wire.TypePing})
	return err
}
