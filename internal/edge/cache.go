package edge

import (
	"container/list"
	"sync"
	"sync/atomic"

	"github.com/neuroscaler/neuroscaler/internal/par"
)

// Key identifies one cached container: a chunk of a stream at a quality
// rung (quality 0 is the only rung the origin serves today, but the key
// carries it so ABR variants cache side by side).
type Key struct {
	Stream  uint32
	Seq     uint32
	Quality uint8
}

// hash folds the key into one 64-bit value; shard choice and sketch
// indices both derive from it (the sketch applies its own mixing).
func (k Key) hash() uint64 {
	return mix(uint64(k.Stream)<<40 ^ uint64(k.Seq)<<8 ^ uint64(k.Quality))
}

// entry is one cached container, refcounted so zero-copy fanout writes
// can proceed while eviction runs: the slab returns to the pool only
// after the cache AND every in-flight delivery have released it.
//
// The slab holds a complete ChunkData payload as read off the upstream
// wire. prefix aliases all of it except the trailing per-delivery flags
// byte: every delivery writes the shared prefix plus a fresh 1-byte
// tail (wire.WriteShared), so hit fanout re-marshals nothing and the
// frame CRC extends from crcPrefix in O(1).
type entry struct {
	key       Key
	slab      []byte
	prefix    []byte
	crcPrefix uint32
	degraded  bool
	refs      atomic.Int32
	pool      *par.SlabPool[byte]
}

// retain adds one reference. The creator starts with one.
func (e *entry) retain() { e.refs.Add(1) }

// release drops one reference, returning the slab to the pool when the
// last holder lets go.
func (e *entry) release() {
	if e.refs.Add(-1) == 0 {
		e.pool.Put(e.slab)
	}
}

// Cache is a sharded LRU over refcounted container entries with
// popularity-weighted admission: on pressure, a candidate enters only
// by outbidding the eviction victim's access frequency (estimated by a
// per-shard count-min sketch). This is the TinyLFU admission rule — a
// one-hit wonder during a flash crowd cannot displace a chunk that is
// being re-fetched every few hundred milliseconds by a steady audience.
type Cache struct {
	shards    []*cacheShard
	perShard  int64
	evictions atomic.Uint64
}

type cacheShard struct {
	mu     sync.Mutex
	items  map[Key]*list.Element
	lru    *list.List // front = most recently used
	bytes  int64
	sketch *sketch
}

// NewCache builds a cache bounded to capacityBytes across `shards`
// lock domains (shards is rounded up to at least 1; capacity splits
// evenly).
func NewCache(capacityBytes int64, shards int) *Cache {
	if shards < 1 {
		shards = 1
	}
	c := &Cache{shards: make([]*cacheShard, shards), perShard: capacityBytes / int64(shards)}
	// Size each sketch for the entry population its shard can plausibly
	// hold, assuming ~32KiB containers; newSketch rounds up from there.
	per := int(c.perShard / (32 << 10))
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			items:  make(map[Key]*list.Element),
			lru:    list.New(),
			sketch: newSketch(per),
		}
	}
	return c
}

func (c *Cache) shard(h uint64) *cacheShard {
	return c.shards[h%uint64(len(c.shards))]
}

// Get returns the cached entry for k with a reference retained for the
// caller (who must release it after the delivery write). Every lookup —
// hit or miss — counts toward k's popularity.
func (c *Cache) Get(k Key) (*entry, bool) {
	h := k.hash()
	sh := c.shard(h)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.sketch.touch(h)
	el, ok := sh.items[k]
	if !ok {
		return nil, false
	}
	sh.lru.MoveToFront(el)
	ent := el.Value.(*entry)
	ent.retain()
	return ent, true
}

// Admit offers a freshly fetched entry to the cache. Under pressure it
// evicts LRU victims only while the candidate's sketch frequency is at
// least each victim's; the first victim that outranks the candidate
// wins and the candidate is rejected instead. On admission the cache
// retains its own reference and returns true; on rejection the entry is
// untouched (the caller's reference still serves the in-flight
// deliveries, then the slab recycles).
func (c *Cache) Admit(ent *entry) bool {
	size := int64(len(ent.slab))
	h := ent.key.hash()
	sh := c.shard(h)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if size > c.perShard {
		return false
	}
	if el, ok := sh.items[ent.key]; ok {
		// A concurrent flight already admitted this key (e.g. a late
		// re-fetch after an eviction raced). Keep the incumbent.
		sh.lru.MoveToFront(el)
		return false
	}
	freq := sh.sketch.estimate(h)
	for sh.bytes+size > c.perShard {
		back := sh.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*entry)
		if sh.sketch.estimate(victim.key.hash()) > freq {
			return false
		}
		sh.evictLocked(back, victim)
		c.evictions.Add(1)
	}
	ent.retain()
	sh.items[ent.key] = sh.lru.PushFront(ent)
	sh.bytes += size
	return true
}

func (sh *cacheShard) evictLocked(el *list.Element, ent *entry) {
	sh.lru.Remove(el)
	delete(sh.items, ent.key)
	sh.bytes -= int64(len(ent.slab))
	ent.release()
}

// Evictions reports how many entries pressure has pushed out.
func (c *Cache) Evictions() uint64 { return c.evictions.Load() }

// Len reports the resident entry count.
func (c *Cache) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// Bytes reports the resident payload bytes.
func (c *Cache) Bytes() int64 {
	var n int64
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.bytes
		sh.mu.Unlock()
	}
	return n
}
