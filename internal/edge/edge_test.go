package edge

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/neuroscaler/neuroscaler/internal/faults"
	"github.com/neuroscaler/neuroscaler/internal/frame"
	"github.com/neuroscaler/neuroscaler/internal/media"
	"github.com/neuroscaler/neuroscaler/internal/sr"
	"github.com/neuroscaler/neuroscaler/internal/synth"
	"github.com/neuroscaler/neuroscaler/internal/vcodec"
	"github.com/neuroscaler/neuroscaler/internal/wire"
)

const (
	testScale = 3
	testLRW   = 96
	testLRH   = 64
	testGOP   = 12
)

func quietf(string, ...any) {}

// testOrigin is a full media origin (enhancer pool + server) seeded
// with synthetic streams, so edge tests exercise the real wire path
// end to end.
type testOrigin struct {
	srv  *media.Server
	pool *media.EnhancerPool
}

// startOrigin boots an origin holding chunksPer chunks for each of the
// given streams. With lazy set, containers stay packets-only until the
// first fetch triggers their enhancement build.
func startOrigin(t testing.TB, lazy bool, streams []uint32, chunksPer int) *testOrigin {
	t.Helper()
	var mu sync.Mutex
	hrByStream := make(map[uint32][]*frame.Frame)
	provider := func(streamID uint32, h wire.Hello) (sr.Model, error) {
		mu.Lock()
		defer mu.Unlock()
		return sr.NewOracleModel(h.Model, hrByStream[streamID])
	}
	local, err := media.NewLocalEnhancer(provider)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := media.NewEnhancerPool(
		[]media.Replica{media.StaticReplica("solo", local)},
		media.PoolConfig{Logf: quietf},
	)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := media.NewServer("127.0.0.1:0", pool, media.ServerConfig{
		AnchorFraction: 0.10, LazyEnhancement: lazy, Logf: quietf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = srv.Close()
		_ = pool.Close()
	})
	prof, err := synth.ProfileByName("lol")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range streams {
		gen, err := synth.NewGenerator(prof, testLRW*testScale, testLRH*testScale, int64(id))
		if err != nil {
			t.Fatal(err)
		}
		hr := gen.GenerateChunk(testGOP * chunksPer)
		mu.Lock()
		hrByStream[id] = hr
		mu.Unlock()
		streamer, err := media.NewStreamer(srv.Addr(), id, wire.Hello{
			Config: vcodec.Config{
				Width: testLRW, Height: testLRH, FPS: 30, BitrateKbps: 700,
				GOP: testGOP, Mode: vcodec.ModeConstrainedVBR,
			},
			Scale: testScale, Model: sr.HighQuality(), Content: "lol",
		})
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < chunksPer; c++ {
			lr := make([]*frame.Frame, testGOP)
			for i := range lr {
				if lr[i], err = frame.Downscale(hr[c*testGOP+i], testScale); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := streamer.SendChunk(lr); err != nil {
				t.Fatalf("stream %d chunk %d: %v", id, c, err)
			}
		}
		if err := streamer.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return &testOrigin{srv: srv, pool: pool}
}

func startEdge(t testing.TB, origin *testOrigin, cfg Config) *Edge {
	t.Helper()
	cfg.Upstream = origin.srv.Addr()
	if cfg.Logf == nil {
		cfg.Logf = quietf
	}
	e, err := NewEdge("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Close() })
	return e
}

// TestEdgeSingleFlight is the tentpole coalescing contract: 32 viewers
// concurrently requesting the same cold chunk cause exactly one
// upstream fetch and exactly one enhancement build, asserted via the
// enhancer pool's call counters. Run under -race in CI.
func TestEdgeSingleFlight(t *testing.T) {
	const viewers = 32
	origin := startOrigin(t, true, []uint32{9}, 1)
	if got := origin.pool.Counters().Calls; got != 0 {
		t.Fatalf("lazy origin enhanced %d anchors at ingest, want 0", got)
	}
	e := startEdge(t, origin, Config{})

	clients := make([]*Client, viewers)
	for i := range clients {
		c, err := Dial(e.Addr(), 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	var (
		wg      sync.WaitGroup
		start   = make(chan struct{})
		results = make([][]byte, viewers)
		errs    = make([]error, viewers)
	)
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			<-start
			cd, err := c.FetchChunk(9, 0, 0)
			results[i], errs[i] = cd.Data, err
		}(i, c)
	}
	close(start)
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("viewer %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i], results[0]) {
			t.Fatalf("viewer %d got different bytes", i)
		}
	}
	// Exactly one enhancement: the lazy origin selects one anchor per
	// test-geometry chunk, so pool calls count builds directly.
	if calls := origin.pool.Counters().Calls; calls != 1 {
		t.Errorf("enhancer pool calls = %d, want 1 (single flight collapsed to one build)", calls)
	}
	if builds := origin.srv.Counters().LazyBuilds; builds != 1 {
		t.Errorf("origin lazy builds = %d, want 1", builds)
	}
	c := e.Counters()
	if c.CacheMisses != 1 {
		t.Errorf("edge misses = %d, want 1", c.CacheMisses)
	}
	if c.CoalescedWaits != viewers-1 {
		t.Errorf("coalesced waits = %d, want %d", c.CoalescedWaits, viewers-1)
	}
	if c.FetchesServed != viewers {
		t.Errorf("fetches served = %d, want %d", c.FetchesServed, viewers)
	}

	// A refetch is a pure cache hit: no new origin work.
	cd, err := clients[0].FetchChunk(9, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !cd.CacheHit {
		t.Error("refetch not flagged as cache hit")
	}
	if !bytes.Equal(cd.Data, results[0]) {
		t.Error("cache hit bytes differ from first delivery")
	}
	if calls := origin.pool.Counters().Calls; calls != 1 {
		t.Errorf("refetch grew pool calls to %d", calls)
	}
	if got := e.Counters().CacheHits; got != 1 {
		t.Errorf("edge hits = %d, want 1", got)
	}
}

// TestEdgeByteIdenticalToDirectIngest extends the byte-determinism
// contract across the delivery tier: chunks served through the edge are
// byte-identical to the containers the origin stored at ingest.
func TestEdgeByteIdenticalToDirectIngest(t *testing.T) {
	const chunks = 2
	origin := startOrigin(t, false, []uint32{4}, chunks)
	e := startEdge(t, origin, Config{})
	c, err := Dial(e.Addr(), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for seq := 0; seq < chunks; seq++ {
		want, err := origin.srv.Store().Chunk(4, seq)
		if err != nil {
			t.Fatal(err)
		}
		cd, err := c.FetchChunk(4, uint32(seq), 0)
		if err != nil {
			t.Fatalf("chunk %d: %v", seq, err)
		}
		if !bytes.Equal(cd.Data, want) {
			t.Fatalf("chunk %d: edge bytes differ from direct ingest (%d vs %d bytes)", seq, len(cd.Data), len(want))
		}
		if cd.CacheHit || cd.Degraded {
			t.Errorf("chunk %d first fetch flags = %+v", seq, cd)
		}
		hit, err := c.FetchChunk(4, uint32(seq), 0)
		if err != nil {
			t.Fatal(err)
		}
		if !hit.CacheHit || !bytes.Equal(hit.Data, want) {
			t.Fatalf("chunk %d cache hit: flag=%v identical=%v", seq, hit.CacheHit, bytes.Equal(hit.Data, want))
		}
	}
	// Errors for absent chunks are non-fatal typed replies.
	if _, err := c.FetchChunk(4, chunks+7, 0); err == nil {
		t.Fatal("fetch of absent chunk succeeded")
	}
	if _, err := c.FetchChunk(4, 0, 0); err != nil {
		t.Fatalf("conn did not survive fetch error: %v", err)
	}
}

// TestEdgeSubscribeFanout pins the zero-copy fanout path: a subscriber
// receives every chunk another viewer pulls, byte-identical, flagged as
// cache-served, and at most once per sequence.
func TestEdgeSubscribeFanout(t *testing.T) {
	const chunks = 3
	origin := startOrigin(t, false, []uint32{6}, chunks)
	e := startEdge(t, origin, Config{})

	sub, err := Dial(e.Addr(), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(6, 0, 0); err != nil {
		t.Fatal(err)
	}
	if got := e.Counters().Subscribers; got != 1 {
		t.Fatalf("subscribers = %d, want 1", got)
	}

	puller, err := Dial(e.Addr(), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer puller.Close()
	for seq := 0; seq < chunks; seq++ {
		if _, err := puller.FetchChunk(6, uint32(seq), 0); err != nil {
			t.Fatalf("pull %d: %v", seq, err)
		}
	}
	seen := make(map[uint32]bool)
	for i := 0; i < chunks; i++ {
		p, err := sub.NextPush(10 * time.Second)
		if err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		if p.StreamID != 6 || seen[p.Chunk.Seq] {
			t.Fatalf("push %d: stream %d seq %d (dup=%v)", i, p.StreamID, p.Chunk.Seq, seen[p.Chunk.Seq])
		}
		seen[p.Chunk.Seq] = true
		want, err := origin.srv.Store().Chunk(6, int(p.Chunk.Seq))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p.Chunk.Data, want) {
			t.Fatalf("push seq %d bytes differ from ingest", p.Chunk.Seq)
		}
		if !p.Chunk.CacheHit {
			t.Errorf("push seq %d not flagged cache-served", p.Chunk.Seq)
		}
	}
	// Re-pulling an already-pushed chunk must not re-push it: the
	// per-subscriber watermark makes fanout at-most-once.
	if _, err := puller.FetchChunk(6, 1, 0); err != nil {
		t.Fatal(err)
	}
	if p, err := sub.NextPush(200 * time.Millisecond); err == nil {
		t.Fatalf("duplicate push: %+v", p)
	} else if err != ErrNoPush {
		t.Fatal(err)
	}
	if got := e.Counters().FanoutPushes; got != chunks {
		t.Errorf("fanout pushes = %d, want %d", got, chunks)
	}
}

// TestEdgeUpstreamChaos drives the origin link through a fault gate:
// with the link dead, fetches fail with typed errors but cached chunks
// keep serving and viewer conns survive; after revival the edge redials
// and recovers without restart.
func TestEdgeUpstreamChaos(t *testing.T) {
	origin := startOrigin(t, false, []uint32{2}, 2)
	gate := &faults.Gate{}
	inj := faults.MustInjector(1, faults.Config{})
	e := startEdge(t, origin, Config{
		DialUpstream: func(addr string) (net.Conn, error) {
			if gate.Dead() {
				return nil, fmt.Errorf("edge_test: upstream link dead")
			}
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return faults.WrapConn(conn, inj, gate), nil
		},
	})
	c, err := Dial(e.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.FetchChunk(2, 0, 0); err != nil {
		t.Fatalf("healthy fetch: %v", err)
	}
	gate.Kill()
	if _, err := c.FetchChunk(2, 1, 0); err == nil {
		t.Fatal("fetch over dead link succeeded")
	}
	// Cached chunk still serves, on the same viewer conn.
	cd, err := c.FetchChunk(2, 0, 0)
	if err != nil {
		t.Fatalf("cached fetch during outage: %v", err)
	}
	if !cd.CacheHit {
		t.Error("outage-time delivery not from cache")
	}
	if got := e.Counters().UpstreamErrors; got == 0 {
		t.Error("upstream errors not counted")
	}
	gate.Revive()
	if _, err := c.FetchChunk(2, 1, 0); err != nil {
		t.Fatalf("fetch after revival: %v", err)
	}
}

// TestEdgeRestartColdCache models an edge crash/replace: a fresh edge in
// front of the same origin starts cold but serves identical bytes.
func TestEdgeRestartColdCache(t *testing.T) {
	origin := startOrigin(t, false, []uint32{8}, 1)
	e1 := startEdge(t, origin, Config{})
	c1, err := Dial(e1.Addr(), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	first, err := c1.FetchChunk(8, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = c1.Close()
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := startEdge(t, origin, Config{})
	c2, err := Dial(e2.Addr(), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	again, err := c2.FetchChunk(8, 0, 0)
	if err != nil {
		t.Fatalf("fetch from replacement edge: %v", err)
	}
	if again.CacheHit {
		t.Error("replacement edge claimed a warm cache")
	}
	if !bytes.Equal(again.Data, first.Data) {
		t.Error("replacement edge served different bytes")
	}
	if got := e2.Counters().CacheMisses; got != 1 {
		t.Errorf("replacement edge misses = %d, want 1", got)
	}
}

// TestEdgeMetricsEndpoint checks the ops surface: the Prometheus
// endpoint exposes the delivery counters and both latency histograms.
func TestEdgeMetricsEndpoint(t *testing.T) {
	origin := startOrigin(t, false, []uint32{5}, 1)
	e := startEdge(t, origin, Config{})
	c, err := Dial(e.Addr(), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.FetchChunk(5, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchChunk(5, 0, 0); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	e.MetricsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"neuroscaler_edge_cache_hits_total 1",
		"neuroscaler_edge_cache_misses_total 1",
		"neuroscaler_edge_coalesced_waits_total 0",
		"neuroscaler_edge_admission_rejects_total 0",
		"neuroscaler_edge_fetches_served_total 2",
		"neuroscaler_edge_hit_latency_seconds_count 1",
		"neuroscaler_edge_miss_latency_seconds_count 1",
		"neuroscaler_edge_cache_entries 1",
	} {
		if !bytes.Contains([]byte(body), []byte(want)) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if e.HitLatency().Count() != 1 || e.MissLatency().Count() != 1 {
		t.Errorf("latency hists: hit=%d miss=%d, want 1/1", e.HitLatency().Count(), e.MissLatency().Count())
	}
}
