package edge

import (
	"testing"

	"github.com/neuroscaler/neuroscaler/internal/par"
	"github.com/neuroscaler/neuroscaler/internal/wire"
)

// makeEntry builds a cache entry over a pool-backed slab holding a
// synthetic container of `size` payload bytes.
func makeEntry(t *testing.T, pool *par.SlabPool[byte], k Key, size int) *entry {
	t.Helper()
	payload := wire.EncodeChunkData(wire.ChunkData{Seq: k.Seq, Quality: k.Quality, Data: make([]byte, size)})
	slab := pool.Get(len(payload))
	copy(slab, payload)
	ent, err := newEntry(k, slab, pool)
	if err != nil {
		t.Fatal(err)
	}
	return ent
}

func TestSketchEstimateAndDecay(t *testing.T) {
	s := newSketch(64)
	a, b := Key{Stream: 1, Seq: 0}.hash(), Key{Stream: 2, Seq: 9}.hash()
	for i := 0; i < 10; i++ {
		s.touch(a)
	}
	s.touch(b)
	if got := s.estimate(a); got < 10 {
		t.Errorf("estimate(a) = %d, want >= 10", got)
	}
	if got := s.estimate(b); got < 1 || got > 2 {
		t.Errorf("estimate(b) = %d, want about 1", got)
	}
	if s.estimate(a) <= s.estimate(b) {
		t.Error("popular key does not outrank cold key")
	}
	s.halve()
	if got := s.estimate(a); got < 5 || got > 6 {
		t.Errorf("post-halve estimate(a) = %d, want about 5", got)
	}
	// Saturation: counters cap at 255 instead of wrapping to small
	// values (the periodic halve may land anywhere in this run, so the
	// bound is one decay below the cap).
	for i := 0; i < 600; i++ {
		s.touch(a)
	}
	if got := s.estimate(a); got < 127 {
		t.Errorf("saturated estimate = %d, want >= 127", got)
	}
}

// TestCacheAdmissionOutranking pins the TinyLFU rule: under pressure a
// cold candidate cannot displace a frequently-accessed victim, but a
// hotter candidate can.
func TestCacheAdmissionOutranking(t *testing.T) {
	var pool par.SlabPool[byte]
	const size = 1 << 10
	entryBytes := len(wire.EncodeChunkData(wire.ChunkData{Data: make([]byte, size)}))
	cache := NewCache(int64(2*entryBytes), 1)

	hotA, hotB := Key{Stream: 1}, Key{Stream: 2}
	cold, warm := Key{Stream: 3}, Key{Stream: 4}
	for i := 0; i < 8; i++ {
		cache.Get(hotA)
		cache.Get(hotB)
	}
	if !cache.Admit(makeEntry(t, &pool, hotA, size)) || !cache.Admit(makeEntry(t, &pool, hotB, size)) {
		t.Fatal("admission rejected with free capacity")
	}
	if cache.Len() != 2 {
		t.Fatalf("len = %d, want 2", cache.Len())
	}

	// One-hit wonder: seen once, every victim outranks it.
	cache.Get(cold)
	coldEnt := makeEntry(t, &pool, cold, size)
	if cache.Admit(coldEnt) {
		t.Fatal("cold candidate displaced a hot victim")
	}
	if cache.Len() != 2 || cache.Evictions() != 0 {
		t.Fatalf("rejection mutated cache: len=%d evictions=%d", cache.Len(), cache.Evictions())
	}
	// The rejected entry still serves its in-flight delivery, then dies.
	if got := coldEnt.refs.Load(); got != 1 {
		t.Fatalf("rejected entry refs = %d, want 1", got)
	}
	coldEnt.release()

	// A candidate hotter than the LRU victim gets in; the victim goes.
	for i := 0; i < 20; i++ {
		cache.Get(warm)
	}
	if !cache.Admit(makeEntry(t, &pool, warm, size)) {
		t.Fatal("hot candidate rejected")
	}
	if cache.Len() != 2 || cache.Evictions() != 1 {
		t.Fatalf("after displacement: len=%d evictions=%d", cache.Len(), cache.Evictions())
	}
	if _, ok := cache.Get(warm); !ok {
		t.Fatal("admitted candidate not resident")
	}
}

// TestCacheRefcountAcrossEviction pins the fanout-safety contract: an
// entry checked out by a reader survives its own eviction, and the slab
// recycles only after the last holder releases.
func TestCacheRefcountAcrossEviction(t *testing.T) {
	var pool par.SlabPool[byte]
	const size = 1 << 10
	entryBytes := len(wire.EncodeChunkData(wire.ChunkData{Data: make([]byte, size)}))
	cache := NewCache(int64(entryBytes), 1) // room for exactly one entry

	k1, k2 := Key{Stream: 1}, Key{Stream: 2}
	cache.Get(k1)
	ent := makeEntry(t, &pool, k1, size)
	if !cache.Admit(ent) {
		t.Fatal("admit k1")
	}
	if got := ent.refs.Load(); got != 2 {
		t.Fatalf("refs after admit = %d, want 2 (creator + cache)", got)
	}
	got, ok := cache.Get(k1)
	if !ok || got != ent {
		t.Fatal("Get did not return the admitted entry")
	}
	if refs := ent.refs.Load(); refs != 3 {
		t.Fatalf("refs after Get = %d, want 3", refs)
	}

	// Displace k1 while the reader still holds it.
	for i := 0; i < 8; i++ {
		cache.Get(k2)
	}
	if !cache.Admit(makeEntry(t, &pool, k2, size)) {
		t.Fatal("admit k2")
	}
	if cache.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", cache.Evictions())
	}
	// Cache's ref dropped with the eviction; the creator and the reader
	// remain, and the prefix bytes are still intact for fanout writes.
	if refs := ent.refs.Load(); refs != 2 {
		t.Fatalf("refs after eviction = %d, want 2", refs)
	}
	if _, _, err := wire.ChunkDataPrefix(ent.slab); err != nil {
		t.Fatalf("evicted-but-held entry corrupted: %v", err)
	}
	ent.release()
	ent.release()
	if refs := ent.refs.Load(); refs != 0 {
		t.Fatalf("refs after final release = %d, want 0", refs)
	}
}

// TestCacheKeepsIncumbentOnDoubleAdmit covers the flight race: if two
// builds of the same key complete, the second admit keeps the incumbent
// and reports rejection.
func TestCacheKeepsIncumbentOnDoubleAdmit(t *testing.T) {
	var pool par.SlabPool[byte]
	cache := NewCache(1<<20, 1)
	k := Key{Stream: 7, Seq: 3}
	first := makeEntry(t, &pool, k, 256)
	second := makeEntry(t, &pool, k, 256)
	if !cache.Admit(first) {
		t.Fatal("first admit")
	}
	if cache.Admit(second) {
		t.Fatal("duplicate admit accepted")
	}
	got, ok := cache.Get(k)
	if !ok || got != first {
		t.Fatal("incumbent lost to duplicate")
	}
	got.release()
	second.release()
	if cache.Len() != 1 {
		t.Fatalf("len = %d, want 1", cache.Len())
	}
}

// TestCacheOversizeEntry: an entry larger than a whole shard can never
// be admitted (it would evict everything and still not fit).
func TestCacheOversizeEntry(t *testing.T) {
	var pool par.SlabPool[byte]
	cache := NewCache(512, 1)
	ent := makeEntry(t, &pool, Key{Stream: 1}, 4<<10)
	if cache.Admit(ent) {
		t.Fatal("oversize entry admitted")
	}
	ent.release()
}
