// Package edge implements the fanout delivery tier of NeuroScaler: a
// cache server that sits between viewers and the media origin, serving
// enhanced anchor containers out of a sharded in-memory LRU so that one
// GPU enhancement pass is amortized across every viewer of a chunk (the
// paper's core economics, Section 5.3). Cold chunks are fetched from
// the origin with single-flight coalescing — N concurrent viewers
// missing the same chunk cost exactly one upstream fetch — and cache
// admission is popularity-weighted by a compact frequency sketch, so a
// flash crowd on one stream cannot wash the working set of every other
// stream out of memory.
package edge

// sketch is a count-min sketch with 4 rows of saturating 8-bit
// counters: a compact approximate frequency table in the TinyLFU
// style. Admission compares a candidate's estimate against the LRU
// victim's, so one byte per counter and a periodic halving (which ages
// stale popularity away) is all the precision needed. Callers hold the
// owning shard's lock; the sketch itself is not goroutine-safe.
type sketch struct {
	rows [sketchRows][]uint8
	mask uint64
	// adds counts touches since the last halving; when it reaches
	// sample the counters decay, keeping estimates fresh under churn.
	adds   uint64
	sample uint64
}

const sketchRows = 4

// newSketch sizes the sketch for roughly `counters` tracked keys,
// rounding the row width up to a power of two. The decay sample is 8x
// the width: each key is halved after the shard has seen about eight
// full turnovers of accesses.
func newSketch(counters int) *sketch {
	width := 64
	for width < counters {
		width <<= 1
	}
	s := &sketch{mask: uint64(width - 1), sample: uint64(width) * 8}
	for i := range s.rows {
		s.rows[i] = make([]uint8, width)
	}
	return s
}

// mix is splitmix64's finalizer: a cheap, well-distributed 64-bit
// mixer. Row indices are derived by double hashing from its two
// halves.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// touch counts one access of key hash h.
func (s *sketch) touch(h uint64) {
	h = mix(h)
	h1, h2 := h, h>>32|1
	for i := range s.rows {
		idx := (h1 + uint64(i)*h2) & s.mask
		if s.rows[i][idx] < 255 {
			s.rows[i][idx]++
		}
	}
	s.adds++
	if s.adds >= s.sample {
		s.halve()
	}
}

// estimate returns the approximate access count of key hash h: the
// minimum across rows, which bounds the overestimate from collisions.
func (s *sketch) estimate(h uint64) uint8 {
	h = mix(h)
	h1, h2 := h, h>>32|1
	min := uint8(255)
	for i := range s.rows {
		idx := (h1 + uint64(i)*h2) & s.mask
		if c := s.rows[i][idx]; c < min {
			min = c
		}
	}
	return min
}

// halve decays every counter by half, aging out stale popularity so a
// stream that was hot an hour ago cannot forever outbid today's
// traffic.
func (s *sketch) halve() {
	for i := range s.rows {
		row := s.rows[i]
		for j := range row {
			row[j] >>= 1
		}
	}
	s.adds = 0
}
