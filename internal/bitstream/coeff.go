package bitstream

// Coefficient coding: quantized, zigzag-ordered transform coefficients are
// dominated by zero runs, so they are stored as (run, level) pairs with an
// explicit end-of-block marker. Runs use unsigned Exp-Golomb, levels signed
// Exp-Golomb. This is the shared entropy stage for both codecs.

// WriteCoeffs appends a (run, level) coding of coeffs to w. A trailing
// all-zero suffix costs a single end-of-block code.
func WriteCoeffs(w *Writer, coeffs []int32) {
	run := uint64(0)
	for _, c := range coeffs {
		if c == 0 {
			run++
			continue
		}
		w.WriteBit(1) // coefficient present
		w.WriteUE(run)
		w.WriteSE(int64(c))
		run = 0
	}
	w.WriteBit(0) // end of block
}

// ReadCoeffs reads a (run, level) coding into dst, which determines the
// block size. Coefficients past the end-of-block marker are zero.
func ReadCoeffs(r *Reader, dst []int32) error {
	for i := range dst {
		dst[i] = 0
	}
	pos := 0
	for {
		present, err := r.ReadBit()
		if err != nil {
			return err
		}
		if present == 0 {
			return nil
		}
		run, err := r.ReadUE()
		if err != nil {
			return err
		}
		level, err := r.ReadSE()
		if err != nil {
			return err
		}
		pos += int(run)
		if pos >= len(dst) {
			return ErrTruncated
		}
		dst[pos] = int32(level)
		pos++
	}
}
