package bitstream

import (
	"encoding/binary"
	"math/bits"
)

// Coefficient coding: quantized, zigzag-ordered transform coefficients are
// dominated by zero runs, so they are stored as (run, level) pairs with an
// explicit end-of-block marker. Runs use unsigned Exp-Golomb, levels signed
// Exp-Golomb. This is the shared entropy stage for both codecs.

// WriteCoeffs appends a (run, level) coding of coeffs to w. A trailing
// all-zero suffix costs a single end-of-block code.
func WriteCoeffs(w *Writer, coeffs []int32) {
	run := uint64(0)
	for _, c := range coeffs {
		if c == 0 {
			run++
			continue
		}
		// Compose the present bit, the run's unsigned Exp-Golomb code, and
		// the level's signed Exp-Golomb code into a single WriteBits call;
		// the concatenated bit pattern is identical to writing the three
		// codes separately.
		ux := run + 1
		ueBits := 2*bits.Len64(ux) - 1
		var su uint64
		if c > 0 {
			su = uint64(2*int64(c) - 1)
		} else {
			su = uint64(-2 * int64(c))
		}
		sx := su + 1
		seBits := 2*bits.Len64(sx) - 1
		if total := 1 + ueBits + seBits; total <= 56 {
			w.WriteBits((1<<uint(ueBits)|ux)<<uint(seBits)|sx, total)
		} else {
			w.WriteBit(1)
			w.WriteUE(run)
			w.WriteSE(int64(c))
		}
		run = 0
	}
	w.WriteBit(0) // end of block
}

// ReadCoeffs reads a (run, level) coding into dst, which determines the
// block size. Coefficients past the end-of-block marker are zero.
//
// The fast path decodes a whole (present, run, level) group from two
// unaligned 64-bit peeks — consuming exactly the bits the general
// ReadBit/ReadUE/ReadSE sequence would — and falls back to that sequence
// near the end of the buffer or for oversized codes.
func ReadCoeffs(r *Reader, dst []int32) error {
	for i := range dst {
		dst[i] = 0
	}
	buf := r.buf
	idx := 0
	for {
		pos := r.pos
		if pos>>3+8 <= len(buf) {
			word := binary.BigEndian.Uint64(buf[pos>>3:]) << uint(pos&7)
			if word>>63 == 0 {
				r.pos = pos + 1
				return nil
			}
			w2 := word << 1
			if w2 != 0 {
				z := bits.LeadingZeros64(w2)
				if 2*z+2 <= 64-pos&7 {
					run := w2<<uint(z)>>uint(63-z) - 1
					pos += 2*z + 2
					if pos>>3+8 <= len(buf) {
						lw := binary.BigEndian.Uint64(buf[pos>>3:]) << uint(pos&7)
						if lw != 0 {
							lz := bits.LeadingZeros64(lw)
							if 2*lz+1 <= 64-pos&7 {
								u := lw<<uint(lz)>>uint(63-lz) - 1
								r.pos = pos + 2*lz + 1
								var level int64
								if u&1 == 1 {
									level = int64(u/2) + 1
								} else {
									level = -int64(u / 2)
								}
								idx += int(run)
								if idx >= len(dst) {
									return ErrTruncated
								}
								dst[idx] = int32(level)
								idx++
								continue
							}
						}
					}
					// Level code extends past the peek window; finish this
					// group with the general signed read.
					r.pos = pos
					level, err := r.ReadSE()
					if err != nil {
						return err
					}
					idx += int(run)
					if idx >= len(dst) {
						return ErrTruncated
					}
					dst[idx] = int32(level)
					idx++
					continue
				}
			}
		}
		present, err := r.ReadBit()
		if err != nil {
			return err
		}
		if present == 0 {
			return nil
		}
		run, err := r.ReadUE()
		if err != nil {
			return err
		}
		level, err := r.ReadSE()
		if err != nil {
			return err
		}
		idx += int(run)
		if idx >= len(dst) {
			return ErrTruncated
		}
		dst[idx] = int32(level)
		idx++
	}
}
