// Package bitstream provides bit-level serialization used by the video and
// image codecs: a Writer/Reader pair for raw bit I/O, unsigned and signed
// Exp-Golomb codes for syntax elements with geometric distributions, and a
// zero-run/level code for quantized transform coefficients.
package bitstream

import (
	"errors"
	"fmt"
)

// ErrTruncated reports a read past the end of the stream.
var ErrTruncated = errors.New("bitstream: truncated")

// Writer accumulates bits most-significant first into a byte slice.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	bits uint8 // number of bits pending in cur
	cur  uint8
}

// WriteBit appends a single bit (any non-zero b is written as 1).
func (w *Writer) WriteBit(b int) {
	w.cur <<= 1
	if b != 0 {
		w.cur |= 1
	}
	w.bits++
	if w.bits == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.bits = 0, 0
	}
}

// WriteBits appends the low n bits of v, most significant first.
// n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		w.WriteBit(int((v >> uint(i)) & 1))
	}
}

// WriteUE appends v as an unsigned Exp-Golomb code.
func (w *Writer) WriteUE(v uint64) {
	x := v + 1
	n := 0
	for t := x; t > 1; t >>= 1 {
		n++
	}
	for i := 0; i < n; i++ {
		w.WriteBit(0)
	}
	w.WriteBits(x, n+1)
}

// WriteSE appends v as a signed Exp-Golomb code (zig-zag mapped).
func (w *Writer) WriteSE(v int64) {
	var u uint64
	if v > 0 {
		u = uint64(2*v - 1)
	} else {
		u = uint64(-2 * v)
	}
	w.WriteUE(u)
}

// Len returns the number of complete bytes written so far, excluding any
// pending partial byte.
func (w *Writer) Len() int { return len(w.buf) }

// BitLen returns the total number of bits written so far.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.bits) }

// Bytes flushes the pending partial byte (padding with zero bits) and
// returns the accumulated buffer. The Writer remains usable; subsequent
// writes continue on a byte boundary.
func (w *Writer) Bytes() []byte {
	if w.bits > 0 {
		w.cur <<= 8 - w.bits
		w.buf = append(w.buf, w.cur)
		w.cur, w.bits = 0, 0
	}
	return w.buf
}

// Reset discards all written data.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.bits = 0, 0
}

// Reader consumes bits most-significant first from a byte slice.
type Reader struct {
	buf []byte
	pos int // bit position
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// ReadBit returns the next bit.
func (r *Reader) ReadBit() (int, error) {
	byteIdx := r.pos >> 3
	if byteIdx >= len(r.buf) {
		return 0, ErrTruncated
	}
	bit := int(r.buf[byteIdx]>>(7-uint(r.pos&7))) & 1
	r.pos++
	return bit, nil
}

// ReadBits returns the next n bits as an unsigned integer. n must be in
// [0, 64].
func (r *Reader) ReadBits(n int) (uint64, error) {
	var v uint64
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// ReadUE reads an unsigned Exp-Golomb code.
func (r *Reader) ReadUE() (uint64, error) {
	n := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		n++
		if n > 63 {
			return 0, fmt.Errorf("bitstream: exp-golomb prefix too long (%d zeros)", n)
		}
	}
	rest, err := r.ReadBits(n)
	if err != nil {
		return 0, err
	}
	return (1<<uint(n) | rest) - 1, nil
}

// ReadSE reads a signed Exp-Golomb code.
func (r *Reader) ReadSE() (int64, error) {
	u, err := r.ReadUE()
	if err != nil {
		return 0, err
	}
	if u&1 == 1 {
		return int64(u/2) + 1, nil
	}
	return -int64(u / 2), nil
}

// AlignByte skips to the next byte boundary.
func (r *Reader) AlignByte() {
	if rem := r.pos & 7; rem != 0 {
		r.pos += 8 - rem
	}
}

// BitsRead returns the number of bits consumed so far.
func (r *Reader) BitsRead() int { return r.pos }
