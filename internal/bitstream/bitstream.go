// Package bitstream provides bit-level serialization used by the video and
// image codecs: a Writer/Reader pair for raw bit I/O, unsigned and signed
// Exp-Golomb codes for syntax elements with geometric distributions, and a
// zero-run/level code for quantized transform coefficients.
package bitstream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// ErrTruncated reports a read past the end of the stream.
var ErrTruncated = errors.New("bitstream: truncated")

// Writer accumulates bits most-significant first into a byte slice.
// The zero value is ready to use. Pending bits collect in a 64-bit
// accumulator; whole bytes flush to the buffer, keeping fewer than 8
// bits pending between calls.
type Writer struct {
	buf  []byte
	bits uint8 // number of bits pending in cur, always < 8 between calls
	cur  uint64
}

// flush moves every complete byte from the accumulator to the buffer.
func (w *Writer) flush() {
	for w.bits >= 8 {
		w.bits -= 8
		w.buf = append(w.buf, byte(w.cur>>w.bits))
	}
}

// WriteBit appends a single bit (any non-zero b is written as 1).
func (w *Writer) WriteBit(b int) {
	w.cur <<= 1
	if b != 0 {
		w.cur |= 1
	}
	w.bits++
	if w.bits == 8 {
		w.buf = append(w.buf, byte(w.cur))
		w.bits = 0
	}
}

// WriteBits appends the low n bits of v, most significant first.
// n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n int) {
	if n > 56 {
		// Split so the accumulator (holding up to 7 pending bits) never
		// overflows.
		w.WriteBits(v>>32, n-32)
		v &= 1<<32 - 1
		n = 32
	}
	w.cur = w.cur<<uint(n) | v&(1<<uint(n)-1)
	w.bits += uint8(n)
	w.flush()
}

// WriteUE appends v as an unsigned Exp-Golomb code.
func (w *Writer) WriteUE(v uint64) {
	// The code is n zeros followed by the n+1 bits of x (whose top bit is
	// 1), which is exactly x written in 2n+1 bits.
	x := v + 1
	n := bits.Len64(x) - 1
	w.WriteBits(x, 2*n+1)
}

// WriteSE appends v as a signed Exp-Golomb code (zig-zag mapped).
func (w *Writer) WriteSE(v int64) {
	var u uint64
	if v > 0 {
		u = uint64(2*v - 1)
	} else {
		u = uint64(-2 * v)
	}
	w.WriteUE(u)
}

// Len returns the number of complete bytes written so far, excluding any
// pending partial byte.
func (w *Writer) Len() int { return len(w.buf) }

// BitLen returns the total number of bits written so far.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.bits) }

// Bytes flushes the pending partial byte (padding with zero bits) and
// returns the accumulated buffer. The Writer remains usable; subsequent
// writes continue on a byte boundary.
func (w *Writer) Bytes() []byte {
	if w.bits > 0 {
		w.buf = append(w.buf, byte(w.cur<<(8-w.bits)))
		w.cur, w.bits = 0, 0
	}
	return w.buf
}

// Reset discards all written data.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.bits = 0, 0
}

// Reader consumes bits most-significant first from a byte slice.
type Reader struct {
	buf []byte
	pos int // bit position
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// ReadBit returns the next bit.
func (r *Reader) ReadBit() (int, error) {
	byteIdx := r.pos >> 3
	if byteIdx >= len(r.buf) {
		return 0, ErrTruncated
	}
	bit := int(r.buf[byteIdx]>>(7-uint(r.pos&7))) & 1
	r.pos++
	return bit, nil
}

// ReadBits returns the next n bits as an unsigned integer. n must be in
// [0, 64]. Bits are gathered up to a byte at a time.
func (r *Reader) ReadBits(n int) (uint64, error) {
	if n == 0 {
		return 0, nil
	}
	end := r.pos + n
	if end > len(r.buf)<<3 {
		return 0, ErrTruncated
	}
	pos := r.pos
	if n <= 56 && pos>>3+8 <= len(r.buf) {
		// Fast path: a single unaligned 64-bit load covers the whole read.
		// After discarding the sub-byte offset the word holds at least 57
		// valid bits, so any n <= 56 extracts with two shifts.
		word := binary.BigEndian.Uint64(r.buf[pos>>3:])
		r.pos = end
		return word << uint(pos&7) >> uint(64-n), nil
	}
	var v uint64
	for n > 0 {
		avail := 8 - pos&7
		take := avail
		if n < take {
			take = n
		}
		chunk := (uint32(r.buf[pos>>3]) >> uint(avail-take)) & ((1 << uint(take)) - 1)
		v = v<<uint(take) | uint64(chunk)
		pos += take
		n -= take
	}
	r.pos = pos
	return v, nil
}

// ReadUE reads an unsigned Exp-Golomb code.
func (r *Reader) ReadUE() (uint64, error) {
	total := len(r.buf) << 3
	pos := r.pos
	if pos>>3+8 <= len(r.buf) {
		// Fast path: one unaligned 64-bit load. Shifting off the sub-byte
		// offset leaves zeros below the valid bits, so a non-zero word puts
		// the terminating 1 inside the loaded window and the whole
		// code — n zeros, the 1, and n payload bits — decodes from the word
		// when 2n+1 fits the valid span.
		word := binary.BigEndian.Uint64(r.buf[pos>>3:]) << uint(pos&7)
		if word != 0 {
			n := bits.LeadingZeros64(word)
			if 2*n+1 <= 64-pos&7 {
				x := word << uint(n) >> uint(63-n)
				r.pos = pos + 2*n + 1
				return x - 1, nil
			}
		}
	}
	// Scan the zero prefix a byte at a time: within a byte, the remaining
	// unread bits sit in the high positions after the shift, so a non-zero
	// value locates the terminating 1 via its leading-zero count.
	n := 0
	for {
		if pos >= total {
			return 0, ErrTruncated
		}
		b := r.buf[pos>>3] << uint(pos&7)
		if b != 0 {
			z := bits.LeadingZeros8(b)
			n += z
			pos += z
			break
		}
		skip := 8 - pos&7
		n += skip
		pos += skip
		if n > 63 {
			return 0, fmt.Errorf("bitstream: exp-golomb prefix too long (%d zeros)", n)
		}
	}
	if n > 63 {
		return 0, fmt.Errorf("bitstream: exp-golomb prefix too long (%d zeros)", n)
	}
	r.pos = pos + 1 // consume the terminating 1
	rest, err := r.ReadBits(n)
	if err != nil {
		return 0, err
	}
	return (1<<uint(n) | rest) - 1, nil
}

// ReadSE reads a signed Exp-Golomb code.
func (r *Reader) ReadSE() (int64, error) {
	u, err := r.ReadUE()
	if err != nil {
		return 0, err
	}
	if u&1 == 1 {
		return int64(u/2) + 1, nil
	}
	return -int64(u / 2), nil
}

// AlignByte skips to the next byte boundary.
func (r *Reader) AlignByte() {
	if rem := r.pos & 7; rem != 0 {
		r.pos += 8 - rem
	}
}

// BitsRead returns the number of bits consumed so far.
func (r *Reader) BitsRead() int { return r.pos }
