package bitstream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBits(t *testing.T) {
	var w Writer
	w.WriteBits(0b1011, 4)
	w.WriteBits(0xABCD, 16)
	w.WriteBit(1)
	r := NewReader(w.Bytes())
	if v, _ := r.ReadBits(4); v != 0b1011 {
		t.Errorf("ReadBits(4) = %b", v)
	}
	if v, _ := r.ReadBits(16); v != 0xABCD {
		t.Errorf("ReadBits(16) = %x", v)
	}
	if v, _ := r.ReadBit(); v != 1 {
		t.Errorf("ReadBit = %d", v)
	}
}

func TestBytesPadsWithZeros(t *testing.T) {
	var w Writer
	w.WriteBits(0b111, 3)
	b := w.Bytes()
	if len(b) != 1 || b[0] != 0b11100000 {
		t.Errorf("Bytes() = %08b", b)
	}
}

func TestBitLen(t *testing.T) {
	var w Writer
	w.WriteBits(0, 13)
	if w.BitLen() != 13 {
		t.Errorf("BitLen = %d, want 13", w.BitLen())
	}
	if w.Len() != 1 {
		t.Errorf("Len = %d, want 1 (complete bytes only)", w.Len())
	}
}

func TestUEKnownValues(t *testing.T) {
	// Classic Exp-Golomb encodings.
	cases := []struct {
		v    uint64
		bits string
	}{
		{0, "1"},
		{1, "010"},
		{2, "011"},
		{3, "00100"},
		{7, "0001000"},
	}
	for _, tc := range cases {
		var w Writer
		w.WriteUE(tc.v)
		got := ""
		r := NewReader(w.Bytes())
		for i := 0; i < len(tc.bits); i++ {
			b, _ := r.ReadBit()
			got += string(rune('0' + b))
		}
		if got != tc.bits {
			t.Errorf("UE(%d) = %s, want %s", tc.v, got, tc.bits)
		}
	}
}

func TestUERoundTrip(t *testing.T) {
	var w Writer
	vals := []uint64{0, 1, 2, 3, 100, 65535, 1 << 32}
	for _, v := range vals {
		w.WriteUE(v)
	}
	r := NewReader(w.Bytes())
	for _, want := range vals {
		got, err := r.ReadUE()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("UE round trip %d -> %d", want, got)
		}
	}
}

func TestSERoundTrip(t *testing.T) {
	var w Writer
	vals := []int64{0, 1, -1, 2, -2, 1000, -1000, 1 << 30, -(1 << 30)}
	for _, v := range vals {
		w.WriteSE(v)
	}
	r := NewReader(w.Bytes())
	for _, want := range vals {
		got, err := r.ReadSE()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("SE round trip %d -> %d", want, got)
		}
	}
}

func TestReaderTruncated(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(9); err != ErrTruncated {
		t.Errorf("ReadBits(9) on 1 byte: err = %v, want ErrTruncated", err)
	}
}

func TestReadUEBadPrefix(t *testing.T) {
	// 9 zero bytes: a prefix of 72 zeros must be rejected, not spin.
	r := NewReader(make([]byte, 9))
	if _, err := r.ReadUE(); err == nil {
		t.Error("ReadUE accepted absurd zero prefix")
	}
}

func TestAlignByte(t *testing.T) {
	r := NewReader([]byte{0x00, 0xFF})
	_, _ = r.ReadBits(3)
	r.AlignByte()
	if r.BitsRead() != 8 {
		t.Errorf("BitsRead after align = %d, want 8", r.BitsRead())
	}
	v, _ := r.ReadBits(8)
	if v != 0xFF {
		t.Errorf("post-align read = %x", v)
	}
	r.AlignByte() // aligning when aligned is a no-op
	if r.BitsRead() != 16 {
		t.Errorf("double align moved position to %d", r.BitsRead())
	}
}

func TestWriterReset(t *testing.T) {
	var w Writer
	w.WriteBits(0xFFFF, 16)
	w.Reset()
	w.WriteBits(0x1, 1)
	b := w.Bytes()
	if len(b) != 1 || b[0] != 0x80 {
		t.Errorf("after Reset, Bytes() = %x", b)
	}
}

func TestCoeffsRoundTrip(t *testing.T) {
	coeffs := []int32{90, 0, 0, -3, 1, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0}
	var w Writer
	WriteCoeffs(&w, coeffs)
	got := make([]int32, len(coeffs))
	if err := ReadCoeffs(NewReader(w.Bytes()), got); err != nil {
		t.Fatal(err)
	}
	for i := range coeffs {
		if got[i] != coeffs[i] {
			t.Fatalf("coeff %d: got %d want %d", i, got[i], coeffs[i])
		}
	}
}

func TestCoeffsAllZeroIsTiny(t *testing.T) {
	var w Writer
	WriteCoeffs(&w, make([]int32, 64))
	if w.BitLen() != 1 {
		t.Errorf("all-zero block costs %d bits, want 1", w.BitLen())
	}
}

func TestCoeffsOverflowRejected(t *testing.T) {
	// Encode 3 coefficients, decode into a 2-slot block.
	var w Writer
	WriteCoeffs(&w, []int32{1, 1, 1})
	err := ReadCoeffs(NewReader(w.Bytes()), make([]int32, 2))
	if err == nil {
		t.Error("ReadCoeffs accepted more coefficients than block size")
	}
}

// Property: any []int16 block round-trips through WriteCoeffs/ReadCoeffs.
func TestQuickCoeffsRoundTrip(t *testing.T) {
	f := func(raw []int16) bool {
		coeffs := make([]int32, len(raw))
		for i, v := range raw {
			coeffs[i] = int32(v)
		}
		var w Writer
		WriteCoeffs(&w, coeffs)
		got := make([]int32, len(coeffs))
		if err := ReadCoeffs(NewReader(w.Bytes()), got); err != nil {
			return false
		}
		for i := range coeffs {
			if got[i] != coeffs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: interleaved UE/SE sequences round-trip.
func TestQuickGolombRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%32) + 1
		var w Writer
		ue := make([]uint64, count)
		se := make([]int64, count)
		for i := 0; i < count; i++ {
			ue[i] = uint64(rng.Intn(1 << 20))
			se[i] = int64(rng.Intn(1<<20) - 1<<19)
			w.WriteUE(ue[i])
			w.WriteSE(se[i])
		}
		r := NewReader(w.Bytes())
		for i := 0; i < count; i++ {
			u, err := r.ReadUE()
			if err != nil || u != ue[i] {
				return false
			}
			s, err := r.ReadSE()
			if err != nil || s != se[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
