package abr

import (
	"testing"

	"github.com/neuroscaler/neuroscaler/internal/vcodec"
)

// edgeLadder builds a ladder whose top rung is enhanced.
func edgeLadder(t *testing.T) []Rung {
	t.Helper()
	rungs, err := Ladder(vcodec.Config{Width: 480, Height: 270}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !rungs[len(rungs)-1].Enhanced {
		t.Fatal("ladder has no enhanced top rung")
	}
	return rungs
}

// warmTo drives the controller until it settles on rung idx under
// generous bandwidth.
func warmTo(t *testing.T, c *Client, rungs []Rung, idx int) {
	t.Helper()
	top := rungs[len(rungs)-1].BitrateKbps
	for i := 0; i < 32; i++ {
		pick, err := c.Choose(rungs)
		if err != nil {
			t.Fatal(err)
		}
		// 2s chunks at 10x top-rung bandwidth: buffer grows, estimate
		// climbs, picks ratchet up one rung per round.
		bits := rungs[pick].BitrateKbps * 2
		if err := c.OnChunkDownloaded(bits, bits/(10*top), 2); err != nil {
			t.Fatal(err)
		}
		if pick == idx {
			return
		}
	}
	t.Fatalf("controller never reached rung %d", idx)
}

// TestEdgeFeedbackDemotesEnhanced: a cold edge (low hit rate, expensive
// misses) pushes the controller off the enhanced rung until the cache
// warms back up.
func TestEdgeFeedbackDemotesEnhanced(t *testing.T) {
	rungs := edgeLadder(t)
	enhanced := len(rungs) - 1
	c := NewClient()
	warmTo(t, c, rungs, enhanced)

	// Mostly misses, each costing ~6s over a 50ms hit: expected penalty
	// ~0.8 * 6s, far beyond the buffer headroom.
	for i := 0; i < 20; i++ {
		if i%5 == 0 {
			c.OnEdgeDelivery(true, 0.05)
		} else {
			c.OnEdgeDelivery(false, 6.0)
		}
	}
	if hr := c.EdgeHitRate(); hr > 0.5 {
		t.Fatalf("hit rate EWMA = %.2f, want < 0.5 after miss storm", hr)
	}
	pick, err := c.Choose(rungs)
	if err != nil {
		t.Fatal(err)
	}
	if rungs[pick].Enhanced {
		t.Fatalf("picked enhanced rung %d with cold edge (buffer %.1fs)", pick, c.Buffer())
	}

	// Cache warms: hits dominate, the penalty collapses, and the
	// enhanced rung comes back (one step per chunk).
	for i := 0; i < 64; i++ {
		c.OnEdgeDelivery(true, 0.05)
	}
	for i := 0; i < 4; i++ {
		if pick, err = c.Choose(rungs); err != nil {
			t.Fatal(err)
		}
		bits := rungs[pick].BitrateKbps * 2
		if err := c.OnChunkDownloaded(bits, bits/(10*rungs[enhanced].BitrateKbps), 2); err != nil {
			t.Fatal(err)
		}
	}
	if !rungs[pick].Enhanced {
		t.Fatalf("never returned to enhanced rung after edge warmed (pick %d)", pick)
	}
}

// TestEdgeFeedbackNoObservationsIsNeutral: without feedback the
// controller behaves exactly as before the delivery tier existed.
func TestEdgeFeedbackNoObservationsIsNeutral(t *testing.T) {
	rungs := edgeLadder(t)
	c := NewClient()
	warmTo(t, c, rungs, len(rungs)-1)
	pick, err := c.Choose(rungs)
	if err != nil {
		t.Fatal(err)
	}
	if !rungs[pick].Enhanced {
		t.Fatalf("pick %d, want enhanced with no edge feedback", pick)
	}
}

// TestEdgeFeedbackHitsOnlyIsNeutral: a perfectly warm edge never
// demotes — the penalty needs observed misses costlier than hits.
func TestEdgeFeedbackHitsOnlyIsNeutral(t *testing.T) {
	rungs := edgeLadder(t)
	c := NewClient()
	warmTo(t, c, rungs, len(rungs)-1)
	for i := 0; i < 50; i++ {
		c.OnEdgeDelivery(true, 0.05)
	}
	pick, err := c.Choose(rungs)
	if err != nil {
		t.Fatal(err)
	}
	if !rungs[pick].Enhanced {
		t.Fatalf("pick %d, want enhanced with all-hit edge", pick)
	}
}
