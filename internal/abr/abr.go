// Package abr implements the distribution side of the deployment model
// (Figure 8): the media server transcodes the ingest stream into a ladder
// of lower-resolution rungs while NeuroScaler produces the enhanced top
// rung, and viewers run an adaptive-bitrate algorithm to pick the highest
// rung their bandwidth sustains. It provides the ladder builder, the
// transcoding helper, a throughput+buffer ABR controller, and a playback
// simulator that reports quality-of-experience metrics.
package abr

import (
	"errors"
	"fmt"

	"github.com/neuroscaler/neuroscaler/internal/frame"
	"github.com/neuroscaler/neuroscaler/internal/vcodec"
)

// Rung is one quality level a viewer can select.
type Rung struct {
	Name          string
	Width, Height int
	BitrateKbps   float64
	// Enhanced marks the neural-enhanced top rung NeuroScaler adds.
	Enhanced bool
}

// Ladder builds the distribution ladder for an ingest configuration: the
// standard rungs at and below the ingest resolution (traditional
// transcoding) plus, when scale > 1, the NeuroScaler-enhanced rung at
// scale× the ingest resolution. Bitrates follow the YouTube-Live ladder
// the paper configures (0.7 / 4.125 / 6.75 / 35.5 Mbps for 360p / 720p /
// 1080p / 2160p), scaled by pixel count for non-standard sizes.
func Ladder(ingest vcodec.Config, scale int) ([]Rung, error) {
	if ingest.Width <= 0 || ingest.Height <= 0 {
		return nil, errors.New("abr: bad ingest dimensions")
	}
	if scale < 1 || scale > 4 {
		return nil, fmt.Errorf("abr: scale %d out of [1, 4]", scale)
	}
	var rungs []Rung
	// Downscaled rungs at 1/3 and 1/2 of ingest (when they stay sensible).
	if ingest.Width >= 48 {
		rungs = append(rungs, Rung{
			Name:        "low",
			Width:       ingest.Width / 3,
			Height:      ingest.Height / 3,
			BitrateKbps: ladderBitrate(ingest.Width/3, ingest.Height/3),
		})
		rungs = append(rungs, Rung{
			Name:        "mid",
			Width:       ingest.Width / 2,
			Height:      ingest.Height / 2,
			BitrateKbps: ladderBitrate(ingest.Width/2, ingest.Height/2),
		})
	}
	rungs = append(rungs, Rung{
		Name:        "source",
		Width:       ingest.Width,
		Height:      ingest.Height,
		BitrateKbps: ladderBitrate(ingest.Width, ingest.Height),
	})
	if scale > 1 {
		rungs = append(rungs, Rung{
			Name:        "enhanced",
			Width:       ingest.Width * scale,
			Height:      ingest.Height * scale,
			BitrateKbps: ladderBitrate(ingest.Width*scale, ingest.Height*scale),
			Enhanced:    true,
		})
	}
	return rungs, nil
}

// ladderBitrate interpolates the paper's YouTube-Live ladder by pixels.
func ladderBitrate(w, h int) float64 {
	// 720p reference: 4125 kbps at 921600 px; sublinear growth matching
	// the 360p (0.7 Mbps) and 2160p (35.5 Mbps) points approximately.
	px := float64(w * h)
	ref := 921600.0
	switch {
	case px >= ref: // toward 2160p: 9x pixels -> 8.6x bits
		return 4125 * (px / ref) * 0.956
	default: // toward 360p: 1/4 pixels -> ~1/6 bits
		return 4125 * (px / ref) * (0.5 + 0.5*px/ref)
	}
}

// Transcode produces one rung's stream from the source frames
// (downscaling when the rung is below source resolution). It is the
// "traditional transcoding pipeline" of Figure 8.
func Transcode(src []*frame.Frame, rung Rung, fps, gop int) (*vcodec.Stream, error) {
	if len(src) == 0 {
		return nil, errors.New("abr: no source frames")
	}
	frames := make([]*frame.Frame, len(src))
	for i, f := range src {
		if f.W == rung.Width && f.H == rung.Height {
			frames[i] = f
			continue
		}
		scaled, err := frame.ScaleBilinear(f, rung.Width, rung.Height)
		if err != nil {
			return nil, err
		}
		frames[i] = scaled
	}
	enc, err := vcodec.NewEncoder(vcodec.Config{
		Width: rung.Width, Height: rung.Height, FPS: fps,
		BitrateKbps: int(rung.BitrateKbps), GOP: gop,
	})
	if err != nil {
		return nil, err
	}
	return enc.EncodeAll(frames)
}

// Client is a throughput+buffer ABR controller in the BOLA/HYB family:
// it estimates throughput with an EWMA and picks the highest rung whose
// bitrate fits a safety fraction of the estimate, downgrading aggressively
// when the buffer runs low and allowing one-step upgrades when it is deep.
type Client struct {
	// SafetyFactor is the fraction of estimated throughput a rung may
	// consume (default 0.8).
	SafetyFactor float64
	// LowBufferS triggers conservative picks; DeepBufferS allows probing
	// one rung above the throughput-safe choice.
	LowBufferS  float64
	DeepBufferS float64

	throughputKbps float64 // EWMA
	bufferS        float64
	lastChoice     int

	// Edge delivery feedback (the BONES-style step): the delivery tier
	// reports per chunk whether the edge cache served it and how long
	// delivery took. A cold edge means enhanced-rung chunks carry the
	// origin's enhancement latency on the viewer's critical path, so
	// the controller demands extra buffer headroom before picking the
	// enhanced rung.
	edgeHitRate  float64 // EWMA of hit indicator
	edgeHitLatS  float64 // EWMA delivery latency on hits
	edgeMissLatS float64 // EWMA delivery latency on misses
	edgeSamples  int
}

// NewClient returns a controller with standard parameters.
func NewClient() *Client {
	return &Client{SafetyFactor: 0.8, LowBufferS: 4, DeepBufferS: 16}
}

// Buffer returns the current buffer level in seconds.
func (c *Client) Buffer() float64 { return c.bufferS }

// ThroughputKbps returns the current throughput estimate.
func (c *Client) ThroughputKbps() float64 { return c.throughputKbps }

// OnEdgeDelivery records one enhanced-rung delivery observed at the
// viewer: hit says whether the edge cache served it (the wire cache-hit
// flag), latencyS is the request round trip. The EWMAs feed the
// enhanced-rung headroom check in Choose.
func (c *Client) OnEdgeDelivery(hit bool, latencyS float64) {
	const alpha = 0.2
	ind := 0.0
	if hit {
		ind = 1.0
	}
	if c.edgeSamples == 0 {
		c.edgeHitRate = ind
	} else {
		c.edgeHitRate = alpha*ind + (1-alpha)*c.edgeHitRate
	}
	ewma := func(cur *float64, sample float64) {
		if *cur == 0 {
			*cur = sample
		} else {
			*cur = alpha*sample + (1-alpha)**cur
		}
	}
	if hit {
		ewma(&c.edgeHitLatS, latencyS)
	} else {
		ewma(&c.edgeMissLatS, latencyS)
	}
	c.edgeSamples++
}

// EdgeHitRate returns the EWMA edge cache hit rate (0 before feedback).
func (c *Client) EdgeHitRate() float64 { return c.edgeHitRate }

// edgeMissPenaltyS is the expected extra delivery latency of one
// enhanced-rung chunk: the miss probability times the hit/miss latency
// gap. Zero until both a hit and a miss have been observed.
func (c *Client) edgeMissPenaltyS() float64 {
	if c.edgeSamples == 0 || c.edgeMissLatS <= c.edgeHitLatS {
		return 0
	}
	return (1 - c.edgeHitRate) * (c.edgeMissLatS - c.edgeHitLatS)
}

// Choose picks the rung index to download next. Rungs must be ordered by
// ascending bitrate.
func (c *Client) Choose(rungs []Rung) (int, error) {
	if len(rungs) == 0 {
		return 0, errors.New("abr: empty ladder")
	}
	for i := 1; i < len(rungs); i++ {
		if rungs[i].BitrateKbps < rungs[i-1].BitrateKbps {
			return 0, errors.New("abr: ladder not ordered by bitrate")
		}
	}
	if c.throughputKbps == 0 {
		// Cold start: lowest rung.
		c.lastChoice = 0
		return 0, nil
	}
	budget := c.throughputKbps * c.SafetyFactor
	if c.bufferS < c.LowBufferS {
		budget = c.throughputKbps * 0.5 // protect the buffer
	}
	pick := 0
	for i, r := range rungs {
		if r.BitrateKbps <= budget {
			pick = i
		}
	}
	// Deep buffer: allow probing one rung above, but never jump more
	// than one rung above the previous choice.
	if c.bufferS >= c.DeepBufferS && pick < len(rungs)-1 {
		pick++
	}
	if pick > c.lastChoice+1 {
		pick = c.lastChoice + 1
	}
	// Enhanced rungs ride the delivery tier: when the edge is cold, a
	// miss adds the origin's enhancement latency to the download, so the
	// buffer must also cover the expected miss penalty. Step down to the
	// best non-enhanced rung when the headroom is not there.
	if penalty := c.edgeMissPenaltyS(); penalty > 0 {
		for pick > 0 && rungs[pick].Enhanced && c.bufferS < c.LowBufferS+penalty {
			pick--
		}
	}
	c.lastChoice = pick
	return pick, nil
}

// OnChunkDownloaded updates the controller after downloading a chunk of
// chunkS seconds of media that took downloadS wall seconds at sizeKbits.
func (c *Client) OnChunkDownloaded(sizeKbits, downloadS, chunkS float64) error {
	if downloadS <= 0 || chunkS <= 0 {
		return errors.New("abr: non-positive durations")
	}
	sample := sizeKbits / downloadS
	if c.throughputKbps == 0 {
		c.throughputKbps = sample
	} else {
		const alpha = 0.3
		c.throughputKbps = alpha*sample + (1-alpha)*c.throughputKbps
	}
	// Playback drains the buffer while the chunk downloads, then the
	// chunk is appended.
	c.bufferS -= downloadS
	if c.bufferS < 0 {
		c.bufferS = 0
	}
	c.bufferS += chunkS
	return nil
}

// SessionResult summarizes a simulated playback session.
type SessionResult struct {
	// MeanBitrateKbps is the average media bitrate played.
	MeanBitrateKbps float64
	// RebufferS is the total stall time.
	RebufferS float64
	// Switches counts rung changes.
	Switches int
	// EnhancedShare is the fraction of chunks played from the enhanced rung.
	EnhancedShare float64
	// Choices records the rung index per chunk.
	Choices []int
}

// Simulate plays n chunks of chunkS seconds through a bandwidth trace
// (kbps per chunk period, cycled if shorter than n) and returns QoE
// metrics. It models download time = chunk bits / bandwidth and counts a
// stall whenever the buffer empties mid-download.
func Simulate(c *Client, rungs []Rung, bandwidthKbps []float64, n int, chunkS float64) (*SessionResult, error) {
	if len(bandwidthKbps) == 0 || n <= 0 || chunkS <= 0 {
		return nil, errors.New("abr: bad simulation parameters")
	}
	res := &SessionResult{}
	prev := -1
	for i := 0; i < n; i++ {
		bw := bandwidthKbps[i%len(bandwidthKbps)]
		if bw <= 0 {
			return nil, fmt.Errorf("abr: non-positive bandwidth at %d", i)
		}
		pick, err := c.Choose(rungs)
		if err != nil {
			return nil, err
		}
		rung := rungs[pick]
		bits := rung.BitrateKbps * chunkS
		downloadS := bits / bw
		// Stall time: the part of the download not covered by buffer.
		if downloadS > c.bufferS {
			res.RebufferS += downloadS - c.bufferS
		}
		if err := c.OnChunkDownloaded(bits, downloadS, chunkS); err != nil {
			return nil, err
		}
		res.MeanBitrateKbps += rung.BitrateKbps / float64(n)
		if rung.Enhanced {
			res.EnhancedShare += 1 / float64(n)
		}
		if prev >= 0 && pick != prev {
			res.Switches++
		}
		prev = pick
		res.Choices = append(res.Choices, pick)
	}
	return res, nil
}
