package abr

import (
	"testing"

	"github.com/neuroscaler/neuroscaler/internal/frame"
	"github.com/neuroscaler/neuroscaler/internal/synth"
	"github.com/neuroscaler/neuroscaler/internal/vcodec"
)

func testLadder(t *testing.T) []Rung {
	t.Helper()
	rungs, err := Ladder(vcodec.Config{Width: 1280, Height: 720}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return rungs
}

func TestLadderStructure(t *testing.T) {
	rungs := testLadder(t)
	if len(rungs) != 4 {
		t.Fatalf("ladder has %d rungs, want 4", len(rungs))
	}
	top := rungs[len(rungs)-1]
	if !top.Enhanced || top.Width != 3840 || top.Height != 2160 {
		t.Errorf("top rung = %+v, want enhanced 2160p", top)
	}
	for i := 1; i < len(rungs); i++ {
		if rungs[i].BitrateKbps <= rungs[i-1].BitrateKbps {
			t.Errorf("ladder not ascending at %d: %v then %v", i,
				rungs[i-1].BitrateKbps, rungs[i].BitrateKbps)
		}
		if rungs[i-1].Enhanced {
			t.Error("only the top rung may be enhanced")
		}
	}
	// Paper ladder points: 720p ~4125 kbps, 2160p ~35.5 Mbps.
	src := rungs[2]
	if src.BitrateKbps < 3800 || src.BitrateKbps > 4500 {
		t.Errorf("source rung %v kbps, want ~4125", src.BitrateKbps)
	}
	if top.BitrateKbps < 30000 || top.BitrateKbps > 40000 {
		t.Errorf("enhanced rung %v kbps, want ~35500", top.BitrateKbps)
	}
}

func TestLadderWithoutEnhancement(t *testing.T) {
	rungs, err := Ladder(vcodec.Config{Width: 1280, Height: 720}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rungs {
		if r.Enhanced {
			t.Error("scale 1 ladder should have no enhanced rung")
		}
	}
	if _, err := Ladder(vcodec.Config{}, 3); err == nil {
		t.Error("bad ingest accepted")
	}
	if _, err := Ladder(vcodec.Config{Width: 1280, Height: 720}, 9); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestTranscodeProducesRungStream(t *testing.T) {
	p, _ := synth.ProfileByName("lol")
	g, err := synth.NewGenerator(p, 96, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	src := g.GenerateChunk(12)
	rung := Rung{Name: "low", Width: 48, Height: 32, BitrateKbps: 120}
	stream, err := Transcode(src, rung, 30, 12)
	if err != nil {
		t.Fatal(err)
	}
	if stream.Config.Width != 48 || stream.Config.Height != 32 {
		t.Errorf("transcoded to %dx%d", stream.Config.Width, stream.Config.Height)
	}
	decoded, err := vcodec.DecodeStream(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(vcodec.VisibleFrames(decoded)) != 12 {
		t.Error("transcoded stream lost frames")
	}
	if _, err := Transcode(nil, rung, 30, 12); err == nil {
		t.Error("empty source accepted")
	}
}

func TestTranscodeSameSizePassesFramesThrough(t *testing.T) {
	src := []*frame.Frame{frame.MustNew(48, 32), frame.MustNew(48, 32)}
	rung := Rung{Width: 48, Height: 32, BitrateKbps: 100}
	if _, err := Transcode(src, rung, 30, 2); err != nil {
		t.Fatal(err)
	}
}

func TestClientColdStartsLow(t *testing.T) {
	c := NewClient()
	pick, err := c.Choose(testLadder(t))
	if err != nil {
		t.Fatal(err)
	}
	if pick != 0 {
		t.Errorf("cold start picked rung %d, want 0", pick)
	}
}

func TestClientClimbsWithBandwidth(t *testing.T) {
	rungs := testLadder(t)
	c := NewClient()
	res, err := Simulate(c, rungs, []float64{60000}, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Choices[len(res.Choices)-1]
	if !rungs[last].Enhanced {
		t.Errorf("with 60 Mbps the client should reach the enhanced rung, got %d", last)
	}
	if res.EnhancedShare == 0 {
		t.Error("no enhanced chunks played at high bandwidth")
	}
	if res.RebufferS > 0.5 {
		t.Errorf("rebuffering %v s at ample bandwidth", res.RebufferS)
	}
	// Climbing is one rung at a time.
	for i := 1; i < len(res.Choices); i++ {
		if res.Choices[i] > res.Choices[i-1]+1 {
			t.Errorf("jumped from rung %d to %d", res.Choices[i-1], res.Choices[i])
		}
	}
}

func TestClientStaysLowOnThinPipe(t *testing.T) {
	rungs := testLadder(t)
	c := NewClient()
	res, err := Simulate(c, rungs, []float64{1500}, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.EnhancedShare > 0 {
		t.Error("enhanced rung selected on a 1.5 Mbps pipe")
	}
	if res.MeanBitrateKbps > 2000 {
		t.Errorf("mean bitrate %v kbps exceeds a 1.5 Mbps pipe's sustainable load", res.MeanBitrateKbps)
	}
}

func TestClientDowngradesOnDrop(t *testing.T) {
	rungs := testLadder(t)
	c := NewClient()
	// 20 fat chunks then a collapse.
	trace := make([]float64, 60)
	for i := range trace {
		if i < 20 {
			trace[i] = 60000
		} else {
			trace[i] = 2500
		}
	}
	res, err := Simulate(c, rungs, trace, 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	tail := res.Choices[len(res.Choices)-1]
	if rungs[tail].BitrateKbps > 5000 {
		t.Errorf("client stuck on rung %d (%v kbps) after bandwidth collapse", tail, rungs[tail].BitrateKbps)
	}
	if res.Switches == 0 {
		t.Error("no adaptation happened across a bandwidth collapse")
	}
}

func TestEnhancedRungRaisesQoE(t *testing.T) {
	// The point of Figure 8: viewers with bandwidth benefit only if the
	// enhanced rung exists.
	with := testLadder(t)
	without, err := Ladder(vcodec.Config{Width: 1280, Height: 720}, 1)
	if err != nil {
		t.Fatal(err)
	}
	trace := []float64{50000}
	resWith, err := Simulate(NewClient(), with, trace, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	resWithout, err := Simulate(NewClient(), without, trace, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	if resWith.MeanBitrateKbps <= resWithout.MeanBitrateKbps {
		t.Errorf("enhanced ladder bitrate %v <= plain ladder %v",
			resWith.MeanBitrateKbps, resWithout.MeanBitrateKbps)
	}
}

func TestSimulateValidation(t *testing.T) {
	rungs := testLadder(t)
	if _, err := Simulate(NewClient(), rungs, nil, 10, 2); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := Simulate(NewClient(), rungs, []float64{1000}, 0, 2); err == nil {
		t.Error("zero chunks accepted")
	}
	if _, err := Simulate(NewClient(), rungs, []float64{-5}, 10, 2); err == nil {
		t.Error("negative bandwidth accepted")
	}
	if _, err := NewClient().Choose(nil); err == nil {
		t.Error("empty ladder accepted")
	}
	bad := []Rung{{BitrateKbps: 100}, {BitrateKbps: 50}}
	c := NewClient()
	_ = c.OnChunkDownloaded(100, 1, 2)
	if _, err := c.Choose(bad); err == nil {
		t.Error("unordered ladder accepted")
	}
	if err := c.OnChunkDownloaded(100, 0, 2); err == nil {
		t.Error("zero download time accepted")
	}
}
