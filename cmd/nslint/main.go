// Command nslint runs the repo's static-analysis suite (internal/lint):
// determinism, arenapair, connio, lockhold, seqsafe, errwrap, and the
// interprocedural ownership, lockorder, and goleak analyzers.
//
// Standalone:
//
//	go run ./cmd/nslint ./...            # whole tree, all analyzers
//	go run ./cmd/nslint -only connio ./internal/media
//	go run ./cmd/nslint -json ./...      # machine-readable findings
//	go run ./cmd/nslint -list
//
// As a vet tool (unit-checker protocol, one package per invocation):
//
//	go build -o /tmp/nslint ./cmd/nslint
//	go vet -vettool=/tmp/nslint ./...
//
// Exit status: 0 clean, 1 findings (standalone), 2 findings (vet mode,
// matching go vet's convention), >0 on load errors.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"strings"

	"github.com/neuroscaler/neuroscaler/internal/lint"
)

func main() {
	args := os.Args[1:]

	// go vet driver protocol: the go command probes the tool's identity
	// and flags, then invokes it once per package with a .cfg file.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0]))
	}
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			// The go command content-addresses a vettool by this line: for a
			// "devel" version the last field must be buildID=<id>, and the id
			// should change whenever the tool does so vet results are not
			// stale-cached. Hash the binary itself.
			fmt.Printf("nslint version devel buildID=%s\n", selfBuildID())
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}

	fs := flag.NewFlagSet("nslint", flag.ExitOnError)
	only := fs.String("only", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "print the analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of file:line:col lines")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: nslint [-only a,b] [-json] [-list] [packages]")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.ByName(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nslint:", err)
		os.Exit(2)
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nslint:", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, analyzers)
	if *jsonOut {
		if err := writeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "nslint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "nslint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// jsonDiag is the machine-readable finding shape: stable field names for
// editor integrations and CI annotation tooling.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeJSON(w io.Writer, diags []lint.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(out)
}

// selfBuildID derives a content ID for the running binary so the vet
// driver's result cache invalidates when nslint is rebuilt.
func selfBuildID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// vetCfg is the unit-checker configuration the go command hands a
// vettool: the package's files plus pre-resolved export data for every
// dependency.
type vetCfg struct {
	ImportPath                string
	Dir                       string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nslint:", err)
		return 1
	}
	var cfg vetCfg
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "nslint: parse %s: %v\n", cfgPath, err)
		return 1
	}
	// The driver expects a facts file regardless of findings; nslint has
	// no cross-package facts, so an empty marker suffices.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("nslint\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "nslint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("nslint: no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(token.NewFileSet(), "gc", lookup)
	pkg, err := lint.CheckFiles(cfg.ImportPath, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "nslint:", err)
		return 1
	}
	diags := lint.Run([]*lint.Package{pkg}, lint.All)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d.String())
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
