// Command nslint runs the repo's static-analysis suite (internal/lint):
// determinism, arenapair, connio, budgetflow, framecase, lockhold,
// seqsafe, errwrap, ledger, and the interprocedural ownership,
// refbalance, lockorder, and goleak analyzers.
//
// Standalone:
//
//	go run ./cmd/nslint ./...            # whole tree, all analyzers
//	go run ./cmd/nslint -only connio ./internal/media
//	go run ./cmd/nslint -json ./...      # machine-readable findings
//	go run ./cmd/nslint -sarif out.sarif ./...
//	go run ./cmd/nslint -write-baseline nslint-baseline.json ./...
//	go run ./cmd/nslint -baseline nslint-baseline.json ./...
//	go run ./cmd/nslint -list
//
// A baseline is a JSON array of {file, analyzer, message} entries.
// Findings matching an entry are dropped (line-insensitively, so
// unrelated edits that shift a legacy finding do not resurrect it);
// baseline entries matching nothing are reported as stale, mirroring
// the in-source stale-suppression check.
//
// As a vet tool (unit-checker protocol, one package per invocation):
//
//	go build -o /tmp/nslint ./cmd/nslint
//	go vet -vettool=/tmp/nslint ./...
//
// Exit status: 0 clean, 1 findings (standalone), 2 findings (vet mode,
// matching go vet's convention), >0 on load errors.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/neuroscaler/neuroscaler/internal/lint"
)

func main() {
	args := os.Args[1:]

	// go vet driver protocol: the go command probes the tool's identity
	// and flags, then invokes it once per package with a .cfg file.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0]))
	}
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			// The go command content-addresses a vettool by this line: for a
			// "devel" version the last field must be buildID=<id>, and the id
			// should change whenever the tool does so vet results are not
			// stale-cached. Hash the binary itself.
			fmt.Printf("nslint version devel buildID=%s\n", selfBuildID())
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}

	fs := flag.NewFlagSet("nslint", flag.ExitOnError)
	only := fs.String("only", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "print the analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of file:line:col lines")
	baseline := fs.String("baseline", "", "drop findings matching entries in this JSON baseline file")
	writeBaseline := fs.String("write-baseline", "", "write current findings to this file as a baseline and exit 0")
	sarifOut := fs.String("sarif", "", "also write findings to this file as SARIF 2.1.0")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: nslint [-only a,b] [-json] [-sarif file] [-baseline file] [-write-baseline file] [-list] [packages]")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.ByName(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nslint:", err)
		os.Exit(2)
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nslint:", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, analyzers)
	if *writeBaseline != "" {
		if err := saveBaseline(*writeBaseline, diags); err != nil {
			fmt.Fprintln(os.Stderr, "nslint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "nslint: wrote %d baseline entrie(s) to %s\n", len(diags), *writeBaseline)
		return
	}
	if *baseline != "" {
		var err error
		diags, err = applyBaseline(*baseline, diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nslint:", err)
			os.Exit(2)
		}
	}
	if *sarifOut != "" {
		if err := saveSARIF(*sarifOut, analyzers, diags); err != nil {
			fmt.Fprintln(os.Stderr, "nslint:", err)
			os.Exit(2)
		}
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "nslint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "nslint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// baselineEntry identifies one accepted legacy finding. Line numbers are
// deliberately absent: a baseline should survive unrelated edits above
// the finding, and an analyzer's message already pins what was accepted.
type baselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// baselineFile normalizes a finding's filename to a cwd-relative path so
// baselines are stable across checkouts.
func baselineFile(name string) string {
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(name)
}

func saveBaseline(path string, diags []lint.Diagnostic) error {
	out := make([]baselineEntry, 0, len(diags))
	for _, d := range diags {
		out = append(out, baselineEntry{File: baselineFile(d.Pos.Filename), Analyzer: d.Analyzer, Message: d.Message})
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "\t")
	if err := enc.Encode(out); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o666)
}

// applyBaseline drops findings matching a baseline entry. Each entry
// absorbs any number of identical findings; entries that matched nothing
// are themselves reported, so the baseline shrinks monotonically as the
// debt it records is paid down.
func applyBaseline(path string, diags []lint.Diagnostic) ([]lint.Diagnostic, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []baselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("parse baseline %s: %w", path, err)
	}
	used := make([]bool, len(entries))
	var kept []lint.Diagnostic
	for _, d := range diags {
		file := baselineFile(d.Pos.Filename)
		matched := false
		for i, e := range entries {
			if e.File == file && e.Analyzer == d.Analyzer && e.Message == d.Message {
				used[i] = true
				matched = true
			}
		}
		if !matched {
			kept = append(kept, d)
		}
	}
	for i, e := range entries {
		if !used[i] {
			kept = append(kept, lint.Diagnostic{
				Pos:      token.Position{Filename: path},
				Analyzer: "nslint",
				Message: fmt.Sprintf("stale baseline entry: no %q finding matches %s: %q; delete it",
					e.Analyzer, e.File, e.Message),
			})
		}
	}
	return kept, nil
}

// saveSARIF writes findings in SARIF 2.1.0, the interchange format CI
// code-scanning UIs ingest. One run, one rule per analyzer, one result
// per finding.
func saveSARIF(path string, analyzers []*lint.Analyzer, diags []lint.Diagnostic) error {
	type sarifMsg struct {
		Text string `json:"text"`
	}
	type sarifRule struct {
		ID               string   `json:"id"`
		ShortDescription sarifMsg `json:"shortDescription"`
	}
	type sarifRegion struct {
		StartLine   int `json:"startLine"`
		StartColumn int `json:"startColumn,omitempty"`
	}
	type sarifLocation struct {
		PhysicalLocation struct {
			ArtifactLocation struct {
				URI string `json:"uri"`
			} `json:"artifactLocation"`
			Region sarifRegion `json:"region"`
		} `json:"physicalLocation"`
	}
	type sarifResult struct {
		RuleID    string          `json:"ruleId"`
		Level     string          `json:"level"`
		Message   sarifMsg        `json:"message"`
		Locations []sarifLocation `json:"locations"`
	}
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMsg{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{ID: "nslint", ShortDescription: sarifMsg{Text: "nslint driver diagnostics (malformed or stale suppressions, stale baseline entries)"}})
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		var loc sarifLocation
		loc.PhysicalLocation.ArtifactLocation.URI = baselineFile(d.Pos.Filename)
		loc.PhysicalLocation.Region = sarifRegion{StartLine: max(d.Pos.Line, 1), StartColumn: d.Pos.Column}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			Level:     "error",
			Message:   sarifMsg{Text: d.Message},
			Locations: []sarifLocation{loc},
		})
	}
	doc := map[string]any{
		"$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		"version": "2.1.0",
		"runs": []map[string]any{{
			"tool": map[string]any{
				"driver": map[string]any{
					"name":           "nslint",
					"informationUri": "https://github.com/neuroscaler/neuroscaler",
					"rules":          rules,
				},
			},
			"results": results,
		}},
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "\t")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o666)
}

// jsonDiag is the machine-readable finding shape: stable field names for
// editor integrations and CI annotation tooling.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeJSON(w io.Writer, diags []lint.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(out)
}

// selfBuildID derives a content ID for the running binary so the vet
// driver's result cache invalidates when nslint is rebuilt.
func selfBuildID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// vetCfg is the unit-checker configuration the go command hands a
// vettool: the package's files plus pre-resolved export data for every
// dependency.
type vetCfg struct {
	ImportPath                string
	Dir                       string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nslint:", err)
		return 1
	}
	var cfg vetCfg
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "nslint: parse %s: %v\n", cfgPath, err)
		return 1
	}
	// The driver expects a facts file regardless of findings; nslint has
	// no cross-package facts, so an empty marker suffices.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("nslint\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "nslint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("nslint: no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(token.NewFileSet(), "gc", lookup)
	pkg, err := lint.CheckFiles(cfg.ImportPath, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "nslint:", err)
		return 1
	}
	// Stale-suppression reporting stays off here: under the unit-checker
	// protocol only one package is loaded, so program-scoped analyzers
	// may legitimately not reproduce the finding a directive suppresses.
	diags := lint.Run([]*lint.Package{pkg}, lint.All, lint.NoStaleCheck())
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d.String())
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
