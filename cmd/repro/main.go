// Command repro regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	repro -list
//	repro -exp fig13a
//	repro -exp all [-quick] [-frames N] [-iterations N] [-seed N]
//
// Each experiment prints a labelled table plus notes comparing against the
// paper's reported numbers. The default parameters are paper-faithful and
// take minutes on one core; -quick runs the scaled-down configuration used
// by the test suite.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/neuroscaler/neuroscaler/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment id (e.g. fig13a, tab7) or \"all\"")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		quick      = flag.Bool("quick", false, "use the scaled-down test parameters")
		frames     = flag.Int("frames", 0, "override frames per stream")
		iterations = flag.Int("iterations", 0, "override shuffle iterations")
		seed       = flag.Int64("seed", 0, "override random seed")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "repro: -exp is required (or -list); e.g. repro -exp fig13a")
		os.Exit(2)
	}
	params := experiments.Default()
	if *quick {
		params = experiments.Quick()
	}
	if *frames > 0 {
		params.Frames = *frames
	}
	if *iterations > 0 {
		params.Iterations = *iterations
	}
	if *seed != 0 {
		params.Seed = *seed
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	failed := 0
	for _, id := range ids {
		start := time.Now()
		r, err := experiments.Run(id, params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", id, err)
			failed++
			continue
		}
		fmt.Println(r)
		fmt.Printf("(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
