package main

import (
	"context"
	"log"

	"github.com/neuroscaler/neuroscaler/internal/cluster"
	"github.com/neuroscaler/neuroscaler/internal/driver"
	"github.com/neuroscaler/neuroscaler/internal/enhance"
	"github.com/neuroscaler/neuroscaler/internal/frame"
	"github.com/neuroscaler/neuroscaler/internal/gpu"
	"github.com/neuroscaler/neuroscaler/internal/hybrid"
	"github.com/neuroscaler/neuroscaler/internal/metrics"
	"github.com/neuroscaler/neuroscaler/internal/sched"
	"github.com/neuroscaler/neuroscaler/internal/sr"
	"github.com/neuroscaler/neuroscaler/internal/synth"
	"github.com/neuroscaler/neuroscaler/internal/vcodec"
)

// runClusterDemo exercises the Figure 7 workflow across simulated GPU
// instances: four streams of different content are scheduled globally per
// interval, their anchors are enhanced on two T4 devices, and the hybrid
// outputs are decoded back and scored.
func runClusterDemo(fraction float64, frames int) {
	const (
		scale     = 3
		lrW       = 96
		lrH       = 64
		gop       = 24
		instances = 2
	)
	enhancers := make([]*enhance.Enhancer, instances)
	for i := range enhancers {
		dev, err := gpu.NewDevice(cluster.GPUT4, gpu.Options{PreOptimize: true, PreAllocate: true})
		if err != nil {
			log.Fatalf("neuroscaler: %v", err)
		}
		if enhancers[i], err = enhance.New(dev); err != nil {
			log.Fatalf("neuroscaler: %v", err)
		}
	}
	d, err := driver.New(sched.CostEffective(), enhancers)
	if err != nil {
		log.Fatalf("neuroscaler: %v", err)
	}

	contents := []string{"lol", "gta", "chat", "fortnite"}
	type liveStream struct {
		st   *driver.Stream
		hr   []*frame.Frame
		pkts [][]byte
	}
	streams := make([]liveStream, len(contents))
	for i, content := range contents {
		prof, err := synth.ProfileByName(content)
		if err != nil {
			log.Fatalf("neuroscaler: %v", err)
		}
		g, err := synth.NewGenerator(prof, lrW*scale, lrH*scale, int64(i+1))
		if err != nil {
			log.Fatalf("neuroscaler: %v", err)
		}
		hr := g.GenerateChunk(frames)
		lr := make([]*frame.Frame, frames)
		for j, f := range hr {
			if lr[j], err = frame.Downscale(f, scale); err != nil {
				log.Fatalf("neuroscaler: %v", err)
			}
		}
		cfg := vcodec.Config{Width: lrW, Height: lrH, FPS: 30, BitrateKbps: 500, GOP: gop}
		enc, err := vcodec.NewEncoder(cfg)
		if err != nil {
			log.Fatalf("neuroscaler: %v", err)
		}
		vstream, err := enc.EncodeAll(lr)
		if err != nil {
			log.Fatalf("neuroscaler: %v", err)
		}
		model, err := sr.NewOracleModel(sr.HighQuality(), hr)
		if err != nil {
			log.Fatalf("neuroscaler: %v", err)
		}
		st, err := driver.NewStream(i+1, enc.Config(), scale, model, fraction)
		if err != nil {
			log.Fatalf("neuroscaler: %v", err)
		}
		pkts := make([][]byte, len(vstream.Packets))
		for j, p := range vstream.Packets {
			pkts[j] = p.Data
		}
		streams[i] = liveStream{st: st, hr: hr, pkts: pkts}
	}

	inputs := make([]driver.IntervalInput, len(streams))
	for i, s := range streams {
		inputs[i] = driver.IntervalInput{Stream: s.st, Packets: s.pkts}
	}
	report, err := d.RunInterval(context.Background(), inputs)
	if err != nil {
		log.Fatalf("neuroscaler: %v", err)
	}
	log.Printf("cluster demo: %d anchors scheduled across %d instances", report.Scheduled, instances)
	for i, load := range report.LoadPerInstance {
		log.Printf("cluster demo: instance %d virtual GPU load %v of %v interval",
			i, load.Round(1e6), sched.CostEffective().Interval)
	}
	for _, out := range report.Outputs {
		decoded, err := hybrid.Decode(out.Container)
		if err != nil {
			log.Fatalf("neuroscaler: stream %d: %v", out.StreamID, err)
		}
		hr := streams[out.StreamID-1].hr
		psnr, err := metrics.MeanPSNR(hr[:len(decoded)], decoded)
		if err != nil {
			log.Fatalf("neuroscaler: %v", err)
		}
		log.Printf("cluster demo: stream %d (%s): %d anchors, client quality %.2f dB",
			out.StreamID, contents[out.StreamID-1], out.Anchors, psnr)
	}
}
