// Command neuroscaler runs the networked NeuroScaler deployment. It can
// play three roles:
//
//	neuroscaler -role enhancer -listen :7001
//	    An anchor-enhancer node: accepts anchor jobs over TCP and returns
//	    image-coded super-resolved frames.
//
//	neuroscaler -role server -listen :7000 -http :8080 [-enhancer addr]
//	    The media server: accepts ingest streams, selects and enhances
//	    anchor frames (locally, or on a remote enhancer node), and serves
//	    hybrid containers over HTTP.
//
//	neuroscaler -role demo
//	    A self-contained demo: starts a server and an enhancer on loopback
//	    ports, streams synthetic content through them, and fetches the
//	    enhanced chunks back as a viewer.
//
// In this reproduction content-aware models are oracle models backed by
// synthetic source content, so both server and enhancer resolve models
// from the stream's announced content profile (see DESIGN.md).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sync"

	"github.com/neuroscaler/neuroscaler/internal/frame"
	"github.com/neuroscaler/neuroscaler/internal/media"
	"github.com/neuroscaler/neuroscaler/internal/sr"
	"github.com/neuroscaler/neuroscaler/internal/synth"
	"github.com/neuroscaler/neuroscaler/internal/vcodec"
	"github.com/neuroscaler/neuroscaler/internal/wire"
)

func main() {
	var (
		role     = flag.String("role", "demo", "server | enhancer | demo")
		listen   = flag.String("listen", "127.0.0.1:7000", "ingest (server) or job (enhancer) listen address")
		httpAddr = flag.String("http", "127.0.0.1:8080", "distribution HTTP listen address (server role)")
		enhancer = flag.String("enhancer", "", "remote enhancer address (server role); empty = in-process")
		fraction = flag.Float64("fraction", 0.075, "anchor fraction")
		frames   = flag.Int("frames", 48, "frames per synthetic stream (demo role)")
	)
	flag.Parse()

	switch *role {
	case "enhancer":
		runEnhancer(*listen)
	case "server":
		runServer(*listen, *httpAddr, *enhancer, *fraction)
	case "demo":
		runDemo(*fraction, *frames)
	case "cluster-demo":
		runClusterDemo(*fraction, *frames)
	default:
		fmt.Fprintf(os.Stderr, "neuroscaler: unknown role %q\n", *role)
		os.Exit(2)
	}
}

// oracleProvider resolves content-aware models from announced stream
// metadata by regenerating the synthetic source (the simulation stand-in
// for shipping trained DNN weights; see DESIGN.md).
func oracleProvider(framesPerStream int) media.ModelProvider {
	var mu sync.Mutex
	cache := make(map[uint32]sr.Model)
	return func(streamID uint32, h wire.Hello) (sr.Model, error) {
		mu.Lock()
		defer mu.Unlock()
		if m, ok := cache[streamID]; ok {
			return m, nil
		}
		prof, err := synth.ProfileByName(h.Content)
		if err != nil {
			return nil, err
		}
		g, err := synth.NewGenerator(prof, h.Config.Width*h.Scale, h.Config.Height*h.Scale, int64(streamID))
		if err != nil {
			return nil, err
		}
		m, err := sr.NewOracleModel(h.Model, g.GenerateChunk(framesPerStream))
		if err != nil {
			return nil, err
		}
		cache[streamID] = m
		return m, nil
	}
}

func runEnhancer(addr string) {
	local, err := media.NewLocalEnhancer(oracleProvider(1 << 12))
	if err != nil {
		log.Fatalf("neuroscaler: %v", err)
	}
	srv, err := media.NewEnhancerServer(addr, local, log.Printf)
	if err != nil {
		log.Fatalf("neuroscaler: %v", err)
	}
	log.Printf("neuroscaler: enhancer listening on %s", srv.Addr())
	select {} // serve forever
}

func runServer(ingestAddr, httpAddr, enhancerAddr string, fraction float64) {
	var backend media.AnchorEnhancer
	if enhancerAddr == "" {
		local, err := media.NewLocalEnhancer(oracleProvider(1 << 12))
		if err != nil {
			log.Fatalf("neuroscaler: %v", err)
		}
		backend = local
	} else {
		remote, err := media.DialEnhancer(enhancerAddr)
		if err != nil {
			log.Fatalf("neuroscaler: %v", err)
		}
		defer remote.Close()
		backend = remote
	}
	srv, err := media.NewServer(ingestAddr, backend, media.ServerConfig{AnchorFraction: fraction})
	if err != nil {
		log.Fatalf("neuroscaler: %v", err)
	}
	log.Printf("neuroscaler: ingest on %s, distribution on http://%s", srv.Addr(), httpAddr)
	log.Fatal(http.ListenAndServe(httpAddr, srv.DistributionHandler()))
}

func runDemo(fraction float64, frames int) {
	const (
		scale = 3
		lrW   = 96
		lrH   = 64
		gop   = 24
	)
	provider := oracleProvider(frames)
	local, err := media.NewLocalEnhancer(provider)
	if err != nil {
		log.Fatalf("neuroscaler: %v", err)
	}
	srv, err := media.NewServer("127.0.0.1:0", local, media.ServerConfig{AnchorFraction: fraction})
	if err != nil {
		log.Fatalf("neuroscaler: %v", err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("neuroscaler: %v", err)
	}
	httpSrv := &http.Server{Handler: srv.DistributionHandler()}
	go func() {
		if err := httpSrv.Serve(ln); err != http.ErrServerClosed {
			log.Printf("neuroscaler: http: %v", err)
		}
	}()
	defer httpSrv.Close()
	log.Printf("neuroscaler demo: ingest %s, distribution http://%s", srv.Addr(), ln.Addr())

	hello := wire.Hello{
		Config: vcodec.Config{
			Width: lrW, Height: lrH, FPS: 30, BitrateKbps: 500,
			GOP: gop, Mode: vcodec.ModeConstrainedVBR,
		},
		Scale: scale, Model: sr.HighQuality(), Content: "lol",
	}
	streamer, err := media.NewStreamer(srv.Addr(), 1, hello)
	if err != nil {
		log.Fatalf("neuroscaler: %v", err)
	}
	defer streamer.Close()

	prof, _ := synth.ProfileByName("lol")
	g, err := synth.NewGenerator(prof, lrW*scale, lrH*scale, 1)
	if err != nil {
		log.Fatalf("neuroscaler: %v", err)
	}
	for sent := 0; sent < frames; sent += gop {
		n := gop
		if sent+n > frames {
			n = frames - sent
		}
		hrChunk := g.GenerateChunk(n)
		lrChunk := make([]*frame.Frame, n)
		for i, f := range hrChunk {
			lrChunk[i], err = frame.Downscale(f, scale)
			if err != nil {
				log.Fatalf("neuroscaler: %v", err)
			}
		}
		seq, err := streamer.SendChunk(lrChunk)
		if err != nil {
			log.Fatalf("neuroscaler: chunk: %v", err)
		}
		log.Printf("neuroscaler demo: uploaded chunk %d (%d frames)", seq, n)
	}

	viewer := media.NewViewer("http://" + ln.Addr().String())
	infos, err := viewer.Streams()
	if err != nil {
		log.Fatalf("neuroscaler: %v", err)
	}
	for _, info := range infos {
		log.Printf("neuroscaler demo: stream %d (%s, %dx%d x%d) with %d chunks",
			info.StreamID, info.Content, info.Width, info.Height, info.Scale, info.Chunks)
		for seq := 0; seq < info.Chunks; seq++ {
			out, err := viewer.WatchChunk(info.StreamID, seq)
			if err != nil {
				log.Fatalf("neuroscaler: watch: %v", err)
			}
			log.Printf("neuroscaler demo: decoded chunk %d -> %d frames at %dx%d",
				seq, len(out), out[0].W, out[0].H)
		}
	}
	log.Print("neuroscaler demo: done")
}
