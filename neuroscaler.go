// Package neuroscaler is a from-scratch Go implementation of NeuroScaler
// (Yeo et al., SIGCOMM 2022): scalable neural enhancement for live video
// streams. A media server ingests low-resolution streams, selects the
// most beneficial anchor frames with a zero-inference algorithm driven by
// codec-level information, super-resolves only those anchors, re-encodes
// them with a hybrid video+image codec, and schedules the work across a
// cluster at anchor-frame granularity.
//
// The package exposes four entry points:
//
//   - EnhanceChunk: one-call selective super-resolution of an encoded
//     chunk into a hybrid container (the server-side data path).
//   - DecodeChunk: the client-side reconstruction of a hybrid container.
//   - SelectAnchors: the zero-inference anchor selection algorithm on its
//     own, for integration into other pipelines.
//   - PlanDeployment: cost/throughput estimation of an enhancement fleet
//     on the built-in instance catalog.
//
// The networked deployment (ingest server, enhancer service, HTTP
// distribution) lives in cmd/neuroscaler; runnable walkthroughs live in
// examples/.
package neuroscaler

import (
	"errors"
	"fmt"
	"time"

	"github.com/neuroscaler/neuroscaler/internal/anchor"
	"github.com/neuroscaler/neuroscaler/internal/cluster"
	"github.com/neuroscaler/neuroscaler/internal/frame"
	"github.com/neuroscaler/neuroscaler/internal/hybrid"
	"github.com/neuroscaler/neuroscaler/internal/sr"
	"github.com/neuroscaler/neuroscaler/internal/vcodec"
)

// Frame is a planar YUV 4:2:0 video frame.
type Frame = frame.Frame

// StreamConfig describes an ingest stream's encoding.
type StreamConfig = vcodec.Config

// ModelConfig describes a NAS-style super-resolution network.
type ModelConfig = sr.ModelConfig

// Model super-resolves single frames; see NewOracleModel.
type Model = sr.Model

// HighQualityModel returns the paper's default DNN configuration
// (8 residual blocks, 32 channels, 3× upscale).
func HighQualityModel() ModelConfig { return sr.HighQuality() }

// NewOracleModel builds the simulated content-aware model used throughout
// this reproduction: its "weights" are the stream's high-resolution
// source frames (the data an online trainer would have seen), and its
// fidelity follows the network size. See DESIGN.md for the substitution
// rationale.
func NewOracleModel(cfg ModelConfig, hrFrames []*Frame) (Model, error) {
	return sr.NewOracleModel(cfg, hrFrames)
}

// EncodeIngest encodes raw low-resolution frames into an ingest stream
// with the paper's constrained-VBR configuration.
func EncodeIngest(cfg StreamConfig, frames []*Frame) (*vcodec.Stream, error) {
	enc, err := vcodec.NewEncoder(cfg)
	if err != nil {
		return nil, err
	}
	return enc.EncodeAll(frames)
}

// EnhanceOptions tunes EnhanceChunk.
type EnhanceOptions struct {
	// AnchorFraction is the fraction of frames to enhance (default
	// 0.075, the cost-effective knee). Must not exceed 0.15.
	AnchorFraction float64
	// Scale is the upscale factor; it must match the model's scale.
	Scale int
}

// EnhanceResult is the output of EnhanceChunk.
type EnhanceResult struct {
	// Container is the hybrid-encoded chunk ready for distribution.
	Container *hybrid.Container
	// Anchors is the number of anchor frames enhanced.
	Anchors int
	// AnchorPackets lists the selected packet indices.
	AnchorPackets []int
	// Bytes is the container payload size (video + anchor images).
	Bytes int
}

// EnhanceChunk runs the full server-side NeuroScaler data path over one
// encoded chunk: zero-inference anchor selection, model inference on the
// selected anchors, and hybrid packaging.
func EnhanceChunk(stream *vcodec.Stream, model Model, opts EnhanceOptions) (*EnhanceResult, error) {
	if model == nil {
		return nil, errors.New("neuroscaler: nil model")
	}
	if opts.AnchorFraction == 0 {
		opts.AnchorFraction = 0.075
	}
	if opts.Scale == 0 {
		opts.Scale = model.Config().Scale
	}
	if opts.Scale != model.Config().Scale {
		return nil, fmt.Errorf("neuroscaler: scale %d does not match model scale %d", opts.Scale, model.Config().Scale)
	}
	qp, err := hybrid.QPForFraction(opts.AnchorFraction)
	if err != nil {
		return nil, err
	}
	metas := anchor.MetasFromStream(stream)
	cands := anchor.ZeroInferenceGains(metas)
	n := int(opts.AnchorFraction*float64(len(stream.Packets)) + 0.5)
	if n < 1 {
		n = 1
	}
	selected := anchor.SelectTopN(cands, n)
	anchorSet := anchor.PacketSet(selected, 0)

	dec, err := vcodec.NewDecoderFor(stream)
	if err != nil {
		return nil, err
	}
	dec.CaptureResidual = true
	rec, err := sr.NewReconstructor(model, stream.Config)
	if err != nil {
		return nil, err
	}
	anchors := make(map[int]*frame.Frame, len(anchorSet))
	for i, pkt := range stream.Packets {
		d, err := dec.Decode(pkt.Data)
		if err != nil {
			return nil, fmt.Errorf("neuroscaler: packet %d: %w", i, err)
		}
		if !anchorSet[i] {
			if _, err := rec.Process(d, false); err != nil {
				return nil, fmt.Errorf("neuroscaler: packet %d: %w", i, err)
			}
			continue
		}
		hr, err := model.Apply(d.Frame, d.Info.DisplayIndex)
		if err != nil {
			return nil, fmt.Errorf("neuroscaler: anchor %d: %w", i, err)
		}
		anchors[i] = hr
		if _, err := rec.ProcessProvided(d, hr); err != nil {
			return nil, fmt.Errorf("neuroscaler: anchor %d: %w", i, err)
		}
	}
	container, st, err := hybrid.Encode(stream, anchors, opts.Scale, qp)
	if err != nil {
		return nil, err
	}
	packets := make([]int, 0, len(anchors))
	for _, c := range selected {
		packets = append(packets, c.Meta.Packet)
	}
	return &EnhanceResult{
		Container:     container,
		Anchors:       st.AnchorFrames,
		AnchorPackets: packets,
		Bytes:         st.TotalBytes(),
	}, nil
}

// DecodeChunk performs the client-side reconstruction of a hybrid
// container, returning the high-resolution frames in display order.
func DecodeChunk(c *hybrid.Container) ([]*Frame, error) {
	return hybrid.Decode(c)
}

// AnchorChoice reports one selected anchor.
type AnchorChoice struct {
	Packet       int
	DisplayIndex int
	FrameType    vcodec.FrameType
	Gain         float64
}

// SelectAnchors runs the zero-inference selection (§5.1) over a stream's
// packet metadata and returns the top anchors for the given fraction.
func SelectAnchors(stream *vcodec.Stream, fraction float64) ([]AnchorChoice, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("neuroscaler: anchor fraction %v out of (0, 1]", fraction)
	}
	metas := anchor.MetasFromStream(stream)
	cands := anchor.ZeroInferenceGains(metas)
	n := int(fraction*float64(len(metas)) + 0.5)
	selected := anchor.SelectTopN(cands, n)
	out := make([]AnchorChoice, len(selected))
	for i, c := range selected {
		out[i] = AnchorChoice{
			Packet:       c.Meta.Packet,
			DisplayIndex: c.Meta.DisplayIndex,
			FrameType:    c.Meta.Type,
			Gain:         c.Gain,
		}
	}
	return out, nil
}

// Deployment estimates the fleet for a stream population.
type Deployment struct {
	Instance         string
	Instances        int
	CostPerHour      float64
	CostPerStreamHr  float64
	StreamsPerInst   float64
	InferencePerNode time.Duration
}

// PlanDeployment sizes the most cost-effective enhancer fleet for n
// concurrent streams of the given workload (720p→2160p at 60 fps with
// the high-quality model by default; see cluster.Standard720pWorkload).
func PlanDeployment(n int) (Deployment, error) {
	w := cluster.Standard720pWorkload()
	d, err := w.Demand(cluster.NeuroScaler)
	if err != nil {
		return Deployment{}, err
	}
	fleet, err := cluster.ProvisionFleet(d, n)
	if err != nil {
		return Deployment{}, err
	}
	return Deployment{
		Instance:         fleet.Instance.Name,
		Instances:        fleet.Instances,
		CostPerHour:      fleet.CostPerHr,
		CostPerStreamHr:  fleet.PerStream,
		StreamsPerInst:   fleet.StreamsPer,
		InferencePerNode: cluster.InferLatency(sr.HighQuality(), w.InW, w.InH),
	}, nil
}
